// Attack tests: calibration, exact reconstruction guarantees of RTF / CAH /
// linear inversion on crafted batches, Proposition 1 property checks, and
// the best-match scoring protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "attack/attack.h"
#include "attack/cah.h"
#include "attack/calibration.h"
#include "attack/detection.h"
#include "attack/linear_inversion.h"
#include "attack/recon_eval.h"
#include "attack/rtf.h"
#include "augment/affine.h"
#include "augment/policy.h"
#include "data/image.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "metrics/psnr.h"
#include "nn/loss.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "tensor/ops.h"

namespace oasis::attack {
namespace {

data::InMemoryDataset small_dataset(index_t per_class, std::uint64_t seed,
                                    index_t size = 12, index_t classes = 10) {
  data::SynthConfig cfg;
  cfg.num_classes = classes;
  cfg.height = cfg.width = size;
  cfg.train_per_class = per_class;
  cfg.test_per_class = 0;
  cfg.seed = seed;
  return data::generate(cfg).train;
}

/// Computes one client update against an implanted host and returns the raw
/// gradients — the common plumbing of the exactness tests.
std::vector<tensor::Tensor> gradients_under_attack(
    ActiveAttack& atk, const data::InMemoryDataset& victim, index_t batch,
    index_t neurons, index_t classes, std::uint64_t seed,
    data::Batch* out_batch = nullptr) {
  const auto& shape = victim.image_shape();
  const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
  common::Rng rng(seed);
  auto host = nn::make_attack_host(spec, neurons, classes, rng);
  atk.implant(*host);

  common::Rng batch_rng(seed ^ 0xBA7C);
  const auto indices =
      batch_rng.sample_without_replacement(victim.size(), batch);
  const data::Batch b = data::gather(victim, indices);
  if (out_batch) *out_batch = b;

  host->zero_grad();
  const auto logits = host->forward(b.images, true);
  nn::SoftmaxCrossEntropy loss_fn;
  const auto loss = loss_fn.compute(logits, b.labels);
  host->backward(loss.grad_logits);
  return nn::snapshot_gradients(*host);
}

TEST(Calibration, EmpiricalQuantileKnownValues) {
  const std::vector<real> sample{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(empirical_quantile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(sample, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(sample, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(sample, 0.125), 1.5);
  EXPECT_THROW(empirical_quantile({}, 0.5), Error);
}

TEST(Calibration, CutoffsAreSortedAndSpanSample) {
  auto aux = small_dataset(3, 1);
  const auto sample = mean_brightness(aux);
  const auto cutoffs = quantile_cutoffs(sample, 10);
  ASSERT_EQ(cutoffs.size(), 10u);
  for (std::size_t i = 1; i < cutoffs.size(); ++i) {
    EXPECT_LE(cutoffs[i - 1], cutoffs[i]);
  }
  const real lo = empirical_quantile(sample, 0.0);
  const real hi = empirical_quantile(sample, 1.0);
  EXPECT_GE(cutoffs.front(), lo);
  EXPECT_LE(cutoffs.back(), hi);
}

TEST(Calibration, MeasureDatasetMatchesManualDot) {
  auto aux = small_dataset(1, 2);
  common::Rng rng(3);
  tensor::Tensor w = tensor::Tensor::randn({aux.image_dim()}, rng);
  const auto values = measure_dataset(aux, w);
  ASSERT_EQ(values.size(), aux.size());
  real manual = 0.0;
  const auto img = aux.at(0).image.data();
  for (index_t j = 0; j < img.size(); ++j) manual += w[j] * img[j];
  EXPECT_NEAR(values[0], manual, 1e-12);
}

TEST(Rtf, PerfectReconstructionWithoutDefense) {
  // The headline property: with enough bins, most images of an undefended
  // batch come back essentially verbatim (PSNR > 100 dB).
  auto victim = small_dataset(3, 4);
  auto aux = small_dataset(3, 5);
  const index_t n = 120, batch = 4;
  RtfAttack atk({3, 12, 12}, n, aux);
  data::Batch b;
  const auto grads =
      gradients_under_attack(atk, victim, batch, n, 10, 77, &b);
  const auto candidates = atk.reconstruct(grads);
  EXPECT_FALSE(candidates.empty());
  const auto scores =
      best_match_psnr(candidates, data::unstack_images(b.images));
  index_t perfect = 0;
  for (const auto& s : scores) {
    if (s.best_psnr > 100.0) ++perfect;
  }
  EXPECT_GE(perfect, batch - 1);  // allow one brightness-bin collision
}

TEST(Rtf, SingleSampleBatchIsExact) {
  // With B = 1 there is nothing to collide with: Eq. 2 applies directly.
  auto victim = small_dataset(2, 6);
  auto aux = small_dataset(3, 7);
  const index_t n = 32;
  RtfAttack atk({3, 12, 12}, n, aux);
  data::Batch b;
  const auto grads = gradients_under_attack(atk, victim, 1, n, 10, 78, &b);
  const auto scores = best_match_psnr(atk.reconstruct(grads),
                                      data::unstack_images(b.images));
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_GT(scores[0].best_psnr, 120.0);
}

TEST(Rtf, MajorRotationForcesLinearCombination) {
  // Proposition 1 in action: exact rotations preserve the measurement h·x,
  // so original and rotations share every bin and no adjacent difference can
  // isolate the original.
  auto victim = small_dataset(3, 8);
  auto aux = small_dataset(3, 9);
  const auto& shape = victim.image_shape();
  const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
  const index_t n = 120, batch = 4;
  RtfAttack atk(spec, n, aux);
  common::Rng rng(79);
  auto host = nn::make_attack_host(spec, n, 10, rng);
  atk.implant(*host);

  common::Rng batch_rng(80);
  const auto indices = batch_rng.sample_without_replacement(victim.size(),
                                                            batch);
  data::Batch b = data::gather(victim, indices);
  // Defended batch: originals + their three major rotations.
  auto policy = augment::make_policy({augment::TransformKind::kMajorRotation});
  common::Rng aug_rng(81);
  const data::Batch defended = policy.augment(b, aug_rng);

  host->zero_grad();
  nn::SoftmaxCrossEntropy loss_fn;
  const auto logits = host->forward(defended.images, true);
  host->backward(loss_fn.compute(logits, defended.labels).grad_logits);
  const auto scores =
      best_match_psnr(atk.reconstruct(nn::snapshot_gradients(*host)),
                      data::unstack_images(b.images));
  for (const auto& s : scores) {
    EXPECT_LT(s.best_psnr, 40.0);  // nothing close to verbatim
  }
}

TEST(Rtf, RequiresMatchingHostShape) {
  auto aux = small_dataset(1, 10);
  RtfAttack atk({3, 12, 12}, 16, aux);
  common::Rng rng(82);
  auto wrong_host = nn::make_attack_host({3, 12, 12}, 8, 10, rng);  // n=8
  EXPECT_THROW(atk.implant(*wrong_host), Error);
  EXPECT_THROW(atk.reconstruct({}), Error);  // before implant
}

TEST(Cah, SingleActivationNeuronsReconstructExactly) {
  auto victim = small_dataset(3, 11);
  auto aux = small_dataset(3, 12);
  const index_t n = 160, batch = 4;
  CahAttack atk({3, 12, 12}, n, 1.0 / batch, aux);
  data::Batch b;
  const auto grads =
      gradients_under_attack(atk, victim, batch, n, 10, 83, &b);
  const auto candidates = atk.reconstruct(grads);
  EXPECT_FALSE(candidates.empty());
  const auto scores =
      best_match_psnr(candidates, data::unstack_images(b.images));
  index_t perfect = 0;
  for (const auto& s : scores) {
    if (s.best_psnr > 100.0) ++perfect;
  }
  // With n ≫ B almost every sample is the sole activator of some neuron.
  EXPECT_GE(perfect, batch - 1);
}

TEST(Cah, ActivationRateIsCalibrated) {
  // Implanted neurons must fire with probability ≈ the requested rate under
  // the aux distribution (validated on fresh victim data).
  auto victim = small_dataset(10, 13);
  auto aux = small_dataset(10, 14);
  const index_t n = 64;
  const real rate = 0.25;
  CahAttack atk({3, 12, 12}, n, rate, aux);
  common::Rng rng(84);
  auto host = nn::make_attack_host({3, 12, 12}, n, 10, rng);
  atk.implant(*host);
  auto* dense = dynamic_cast<nn::Dense*>(&host->at(1));
  ASSERT_NE(dense, nullptr);

  index_t fired = 0, total = 0;
  for (index_t i = 0; i < victim.size(); ++i) {
    const auto flat =
        victim.at(i).image.reshaped({1, victim.image_dim()});
    const auto pre = dense->forward(flat, false);
    for (index_t j = 0; j < n; ++j) {
      ++total;
      if (pre.at2(0, j) > 0.0) ++fired;
    }
  }
  const real observed = static_cast<real>(fired) / static_cast<real>(total);
  EXPECT_NEAR(observed, rate, 0.08);
}

TEST(Cah, TrapHalfNegativeModeCalibratesWithZeroBias) {
  // Boenisch et al.'s original construction: zero biases, half-negated rows
  // rescaled so the activation rate still lands on target.
  auto victim = small_dataset(10, 18);
  auto aux = small_dataset(10, 19);
  const index_t n = 64;
  const real rate = 0.25;
  CahAttack atk({3, 12, 12}, n, rate, aux, 0xCA11,
                CahWeightMode::kTrapHalfNegative);
  common::Rng rng(95);
  auto host = nn::make_attack_host({3, 12, 12}, n, 10, rng);
  atk.implant(*host);
  auto* dense = dynamic_cast<nn::Dense*>(&host->at(1));
  ASSERT_NE(dense, nullptr);
  EXPECT_DOUBLE_EQ(dense->bias().value.norm(), 0.0);  // the stealth property

  index_t fired = 0, total = 0;
  for (index_t i = 0; i < victim.size(); ++i) {
    const auto flat = victim.at(i).image.reshaped({1, victim.image_dim()});
    const auto pre = dense->forward(flat, false);
    for (index_t j = 0; j < n; ++j) {
      ++total;
      if (pre.at2(0, j) > 0.0) ++fired;
    }
  }
  EXPECT_NEAR(static_cast<real>(fired) / static_cast<real>(total), rate,
              0.08);
}

TEST(Cah, TrapHalfNegativeModeStillReconstructs) {
  auto victim = small_dataset(3, 20);
  auto aux = small_dataset(3, 21);
  const index_t n = 160, batch = 4;
  CahAttack atk({3, 12, 12}, n, 1.0 / batch, aux, 0xCA11,
                CahWeightMode::kTrapHalfNegative);
  data::Batch b;
  const auto grads = gradients_under_attack(atk, victim, batch, n, 10, 96,
                                            &b);
  const auto scores = best_match_psnr(atk.reconstruct(grads),
                                      data::unstack_images(b.images));
  index_t perfect = 0;
  for (const auto& s : scores) {
    if (s.best_psnr > 100.0) ++perfect;
  }
  EXPECT_GE(perfect, batch - 2);
}

TEST(Cah, RejectsBadActivationRate) {
  auto aux = small_dataset(1, 15);
  EXPECT_THROW(CahAttack({3, 12, 12}, 8, 0.0, aux), Error);
  EXPECT_THROW(CahAttack({3, 12, 12}, 8, 1.0, aux), Error);
}

TEST(Linear, UniqueLabelBatchReconstructsAllImages) {
  const index_t classes = 10, batch = 6;
  auto victim = small_dataset(3, 16);
  const auto& shape = victim.image_shape();
  const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
  LinearInversionAttack atk(spec, classes);
  common::Rng rng(85);
  auto model = nn::make_linear_model(spec, classes, rng);
  atk.implant(*model);

  // Unique-label batch.
  std::vector<index_t> picked;
  std::vector<bool> used(classes, false);
  for (index_t i = 0; i < victim.size() && picked.size() < batch; ++i) {
    if (!used[victim.at(i).label]) {
      used[victim.at(i).label] = true;
      picked.push_back(i);
    }
  }
  ASSERT_EQ(picked.size(), batch);
  const data::Batch b = data::gather(victim, picked);

  model->zero_grad();
  nn::SigmoidBce loss_fn;
  const auto logits = model->forward(b.images, true);
  model->backward(loss_fn.compute(logits, b.labels).grad_logits);
  const auto scores =
      best_match_psnr(atk.reconstruct(nn::snapshot_gradients(*model)),
                      data::unstack_images(b.images));
  for (const auto& s : scores) {
    EXPECT_GT(s.best_psnr, 110.0) << "image " << s.original_index;
  }
}

TEST(Linear, OasisReducesLinearReconstructionToCombination) {
  const index_t classes = 10, batch = 4;
  auto victim = small_dataset(3, 17);
  const auto& shape = victim.image_shape();
  const nn::ImageSpec spec{shape[0], shape[1], shape[2]};
  LinearInversionAttack atk(spec, classes);
  common::Rng rng(86);
  auto model = nn::make_linear_model(spec, classes, rng);
  atk.implant(*model);

  std::vector<index_t> picked;
  std::vector<bool> used(classes, false);
  for (index_t i = 0; i < victim.size() && picked.size() < batch; ++i) {
    if (!used[victim.at(i).label]) {
      used[victim.at(i).label] = true;
      picked.push_back(i);
    }
  }
  const data::Batch b = data::gather(victim, picked);
  auto policy = augment::make_policy({augment::TransformKind::kMajorRotation});
  common::Rng aug_rng(87);
  const data::Batch defended = policy.augment(b, aug_rng);

  model->zero_grad();
  nn::SigmoidBce loss_fn;
  const auto logits = model->forward(defended.images, true);
  model->backward(loss_fn.compute(logits, defended.labels).grad_logits);
  const auto candidates = atk.reconstruct(nn::snapshot_gradients(*model));
  const auto scores =
      best_match_psnr(candidates, data::unstack_images(b.images));
  for (const auto& s : scores) EXPECT_LT(s.best_psnr, 40.0);

  // And the reconstruction is literally the average of the original and its
  // three rotations (the linear combination the paper describes).
  const tensor::Tensor& x = b.images.slice(0);
  tensor::Tensor expected = x;
  expected += augment::rotate90(x);
  expected += augment::rotate180(x);
  expected += augment::rotate270(x);
  expected *= 0.25;
  real best = 0.0;
  for (const auto& cand : candidates) {
    best = std::max(best, metrics::psnr(data::clamp01(cand), expected));
  }
  EXPECT_GT(best, 60.0);
}

TEST(ReconEval, BestMatchPicksTheRightCandidate) {
  common::Rng rng(88);
  tensor::Tensor a = tensor::Tensor::rand({3, 6, 6}, rng);
  tensor::Tensor b = tensor::Tensor::rand({3, 6, 6}, rng);
  tensor::Tensor noisy_b = b;
  for (auto& v : noisy_b.data()) v += 0.01;
  const std::vector<tensor::Tensor> candidates{a, noisy_b};
  const std::vector<tensor::Tensor> originals{b};
  const auto scores = best_match_psnr(candidates, originals);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].best_candidate, 1u);
  EXPECT_GT(scores[0].best_psnr, 35.0);
}

TEST(ReconEval, SkipsNonFiniteAndMisshapenCandidates) {
  common::Rng rng(89);
  tensor::Tensor good = tensor::Tensor::rand({3, 6, 6}, rng);
  tensor::Tensor nan_img = good;
  nan_img[0] = std::nan("");
  tensor::Tensor wrong_shape = tensor::Tensor::rand({3, 4, 4}, rng);
  const std::vector<tensor::Tensor> candidates{nan_img, wrong_shape, good};
  const auto scores = best_match_psnr(candidates, {good});
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].best_candidate, 2u);
  EXPECT_DOUBLE_EQ(scores[0].best_psnr, metrics::kPsnrCap);
}

TEST(ReconEval, NoCandidatesGivesZeroScores) {
  common::Rng rng(90);
  const auto scores =
      best_match_psnr({}, {tensor::Tensor::rand({3, 6, 6}, rng)});
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_DOUBLE_EQ(scores[0].best_psnr, 0.0);
}

// Proposition 1 property sweep: for ANY attacked-layer parameterization, if
// x and x' co-activate the same neurons, no neuron's gradients isolate x.
class Proposition1Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Proposition1Sweep, CoActivatingPairIsNeverIsolated) {
  common::Rng rng(GetParam());
  const index_t d = 32, n = 24, batch = 3;
  // Random malicious layer.
  tensor::Tensor w = tensor::Tensor::randn({n, d}, rng);
  tensor::Tensor bias = tensor::Tensor::randn({n}, rng, 0.0, 0.1);
  // Batch: x0 and x1 = rotation-like permutation of x0 (same multiset, so we
  // construct co-activation directly: x1 chosen to activate the same set).
  tensor::Tensor x0 = tensor::Tensor::rand({d}, rng);
  // Find a perturbed copy that co-activates: scale perturbation down until
  // activation patterns match.
  tensor::Tensor x1 = x0;
  for (int attempt = 0; attempt < 40; ++attempt) {
    tensor::Tensor candidate = x0;
    const real scale = std::pow(0.7, attempt);
    common::Rng prng(GetParam() ^ 0xF00D ^ attempt);
    for (auto& v : candidate.data()) v += prng.normal(0.0, 0.05 * scale);
    bool same = true;
    for (index_t i = 0; i < n && same; ++i) {
      real a0 = bias[i], a1 = bias[i];
      for (index_t j = 0; j < d; ++j) {
        a0 += w.at2(i, j) * x0[j];
        a1 += w.at2(i, j) * candidate[j];
      }
      same = (a0 > 0) == (a1 > 0);
    }
    if (same) {
      x1 = candidate;
      break;
    }
  }
  const real pair_diff = tensor::max_abs_diff(x0, x1);
  ASSERT_GT(pair_diff, 0.0) << "failed to construct a co-activating pair";
  tensor::Tensor x2 = tensor::Tensor::rand({d}, rng);  // bystander

  // Per-sample gradients of the malicious layer under fixed per-sample
  // return gradients g_j (stands in for any downstream-network choice; fixed
  // values keep the isolation bound below deterministic).
  std::vector<tensor::Tensor> xs{x0, x1, x2};
  const std::vector<real> g{0.7, -1.3, 0.4};
  tensor::Tensor gw({n, d});
  tensor::Tensor gb({n});
  for (index_t j = 0; j < batch; ++j) {
    for (index_t i = 0; i < n; ++i) {
      real pre = bias[i];
      for (index_t k = 0; k < d; ++k) pre += w.at2(i, k) * xs[j][k];
      if (pre <= 0) continue;
      gb[i] += g[j];
      for (index_t k = 0; k < d; ++k) gw.at2(i, k) += g[j] * xs[j][k];
    }
  }
  // No neuron ratio may reproduce x0 meaningfully more closely than the
  // x0↔x1 separation allows: with g1/(g0+g1) ≈ 2.17, any co-activated
  // neuron's ratio is at least ~2·pair_diff away from x0 in some coordinate.
  for (index_t i = 0; i < n; ++i) {
    if (std::abs(gb[i]) < 1e-12) continue;
    real err = 0.0;
    for (index_t k = 0; k < d; ++k) {
      const real r = gw.at2(i, k) / gb[i];
      err = std::max(err, std::abs(r - x0[k]));
    }
    EXPECT_GT(err, 1e-3 * pair_diff) << "neuron " << i << " isolated x0";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition1Sweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---- Detection verdict coverage ---------------------------------------------

TEST(Detection, RowNormOutlierFoldsIntoTheVerdict) {
  // A single deliberately amplified trap row: no duplication, no bias
  // ladder, no half-negative structure — only the row_norm_ratio screen
  // (the clause DetectionReport::suspicious() now folds in) can catch it.
  common::Rng rng(61);
  auto host = nn::make_attack_host({3, 12, 12}, 48, 10, rng);
  ASSERT_FALSE(inspect_first_dense(*host).suspicious());

  nn::Dense& dense = detail::find_first_dense(*host);
  const index_t d = dense.in_features();
  for (index_t k = 0; k < d; ++k) dense.weight().value.at2(7, k) *= 50.0;

  const auto report = inspect_first_dense(*host);
  EXPECT_GT(report.row_norm_ratio, 8.0);
  EXPECT_LT(report.row_duplication, 0.5);
  EXPECT_LT(report.bias_monotonicity, 0.95);
  EXPECT_LT(report.trap_half_negative, 0.9);
  EXPECT_TRUE(report.suspicious());
}

TEST(Detection, TrapHalfNegativeScreenSeparatesTrapFromHonest) {
  common::Rng rng(62);
  auto honest = nn::make_attack_host({3, 12, 12}, 48, 10, rng);
  const auto honest_report = inspect_first_dense(*honest);
  EXPECT_LT(honest_report.trap_half_negative, 0.5);
  EXPECT_FALSE(honest_report.suspicious());

  auto aux = small_dataset(6, 63);
  common::Rng rng2(64);
  auto trapped = nn::make_attack_host({3, 12, 12}, 48, 10, rng2);
  CahAttack atk({3, 12, 12}, 48, 0.25, aux, 0xCA11,
                CahWeightMode::kTrapHalfNegative);
  atk.implant(*trapped);
  const auto trap_report = inspect_first_dense(*trapped);
  // Every trap row carries exactly floor(d/2) negated entries by
  // construction, so the screen saturates.
  EXPECT_GT(trap_report.trap_half_negative, 0.9);
  EXPECT_TRUE(trap_report.suspicious());
}

}  // namespace
}  // namespace oasis::attack
