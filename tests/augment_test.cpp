// Augmentation engine tests: exactness of index-permutation transforms,
// algebraic properties (involutions, composition to identity), bilinear warp
// correctness, policy construction of D'.
#include <gtest/gtest.h>

#include <cmath>

#include "augment/affine.h"
#include "augment/policy.h"
#include "augment/transforms.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace oasis::augment {
namespace {

constexpr real kPi = 3.14159265358979323846;

tensor::Tensor random_image(common::Rng& rng, index_t n = 8) {
  return tensor::Tensor::rand({3, n, n}, rng);
}

TEST(Affine, Rotate90KnownPixels) {
  // 2x2 single-channel image; 90° ccw moves in(0,1) -> out(0,0).
  tensor::Tensor img({1, 2, 2}, {1, 2, 3, 4});
  tensor::Tensor r = rotate90(img);
  EXPECT_DOUBLE_EQ(r.at3(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(r.at3(0, 0, 1), 4.0);
  EXPECT_DOUBLE_EQ(r.at3(0, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(r.at3(0, 1, 1), 3.0);
}

TEST(Affine, QuarterTurnsComposeToIdentity) {
  common::Rng rng(1);
  tensor::Tensor img = random_image(rng);
  EXPECT_TRUE(rotate90(rotate90(rotate90(rotate90(img)))) == img);
  EXPECT_TRUE(rotate180(rotate180(img)) == img);
  EXPECT_TRUE(rotate90(rotate270(img)) == img);
  EXPECT_TRUE(rotate90(rotate90(img)) == rotate180(img));
}

TEST(Affine, FlipsAreInvolutions) {
  common::Rng rng(2);
  tensor::Tensor img = random_image(rng);
  EXPECT_TRUE(flip_horizontal(flip_horizontal(img)) == img);
  EXPECT_TRUE(flip_vertical(flip_vertical(img)) == img);
  // HFlip ∘ VFlip == 180° rotation.
  EXPECT_TRUE(flip_horizontal(flip_vertical(img)) == rotate180(img));
}

TEST(Affine, ExactTransformsPreserveThePixelMultiset) {
  // The property that defeats RTF's mean-brightness bins: major rotations
  // and flips permute pixels, so the pixel multiset — and hence the mean up
  // to floating summation order — is preserved exactly.
  common::Rng rng(3);
  tensor::Tensor img = random_image(rng, 16);
  auto sorted = [](const tensor::Tensor& t) {
    std::vector<real> v(t.data().begin(), t.data().end());
    std::sort(v.begin(), v.end());
    return v;
  };
  const auto ref = sorted(img);
  EXPECT_EQ(sorted(rotate90(img)), ref);
  EXPECT_EQ(sorted(rotate180(img)), ref);
  EXPECT_EQ(sorted(rotate270(img)), ref);
  EXPECT_EQ(sorted(flip_horizontal(img)), ref);
  EXPECT_EQ(sorted(flip_vertical(img)), ref);
  EXPECT_NEAR(rotate90(img).sum(), img.sum(), 1e-10);
}

TEST(Affine, MinorRotationChangesMean) {
  // Bilinear zero-fill rotation loses corner mass — minor rotation is NOT
  // mean-preserving, which is why it defends less reliably (Fig. 6 vs 5).
  common::Rng rng(4);
  tensor::Tensor img = tensor::Tensor::full({3, 16, 16}, 1.0);
  tensor::Tensor r = rotate(img, 30.0 * kPi / 180.0);
  EXPECT_LT(r.mean(), img.mean() - 0.05);
}

TEST(Affine, RotationByZeroIsIdentity) {
  common::Rng rng(5);
  tensor::Tensor img = random_image(rng);
  EXPECT_LT(tensor::max_abs_diff(rotate(img, 0.0), img), 1e-12);
}

TEST(Affine, BilinearQuarterTurnMatchesExact) {
  // Rotating by exactly 90° through the bilinear path must agree with the
  // index-permutation implementation (grid points land on grid points).
  common::Rng rng(6);
  tensor::Tensor img = random_image(rng);
  tensor::Tensor bilinear = rotate(img, kPi / 2.0);
  EXPECT_LT(tensor::max_abs_diff(bilinear, rotate90(img)), 1e-9);
}

TEST(Affine, ShearZeroIsIdentity) {
  common::Rng rng(7);
  tensor::Tensor img = random_image(rng);
  EXPECT_LT(tensor::max_abs_diff(shear(img, 0.0), img), 1e-12);
}

TEST(Affine, ShearDisplacesRowsOppositely) {
  // A vertical bar shears into a diagonal: top and bottom rows move in
  // opposite directions around the vertical center.
  tensor::Tensor img({1, 9, 9});
  for (index_t i = 0; i < 9; ++i) img.at3(0, i, 4) = 1.0;
  tensor::Tensor s = shear(img, 0.5);
  // Center row unchanged.
  EXPECT_NEAR(s.at3(0, 4, 4), 1.0, 1e-9);
  // Forward map x' = x + mu(y - cy): top row (y=0) shifts by -2, bottom by
  // +2.
  EXPECT_NEAR(s.at3(0, 0, 2), 1.0, 1e-9);
  EXPECT_NEAR(s.at3(0, 8, 6), 1.0, 1e-9);
}

TEST(Affine, QuarterTurnRequiresSquare) {
  tensor::Tensor img({3, 4, 6});
  EXPECT_THROW(rotate90(img), Error);
  EXPECT_NO_THROW(rotate180(img));
  EXPECT_NO_THROW(flip_horizontal(img));
}

TEST(Transforms, MajorRotationYieldsThreeExactRotations) {
  common::Rng rng(8);
  tensor::Tensor img = random_image(rng);
  MajorRotation mr;
  auto vs = mr.apply(img, rng);
  ASSERT_EQ(vs.size(), 3u);
  EXPECT_TRUE(vs[0] == rotate90(img));
  EXPECT_TRUE(vs[1] == rotate180(img));
  EXPECT_TRUE(vs[2] == rotate270(img));
}

TEST(Transforms, MinorRotationProducesNonTrivialVariant) {
  common::Rng rng(9);
  tensor::Tensor img = random_image(rng, 16);
  MinorRotation mr;
  auto vs = mr.apply(img, rng);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_GT(tensor::max_abs_diff(vs[0], img), 0.01);
}

TEST(Transforms, MinorRotationValidatesRange) {
  EXPECT_THROW(MinorRotation(0.0, 50.0), Error);
  EXPECT_THROW(MinorRotation(10.0, 95.0), Error);
  EXPECT_THROW(MinorRotation(60.0, 30.0), Error);
}

TEST(Transforms, ShearRandomizesSignAndMagnitude) {
  common::Rng rng(10);
  tensor::Tensor img = random_image(rng, 16);
  Shear sh(0.3, 0.3, /*mean_match=*/false);  // fixed magnitude, random sign
  bool saw_left = false, saw_right = false;
  for (int i = 0; i < 20; ++i) {
    auto vs = sh.apply(img, rng);
    // Compare against deterministic shears of both signs.
    if (tensor::max_abs_diff(vs[0], shear(img, 0.3)) < 1e-12) saw_right = true;
    if (tensor::max_abs_diff(vs[0], shear(img, -0.3)) < 1e-12) saw_left = true;
  }
  EXPECT_TRUE(saw_left);
  EXPECT_TRUE(saw_right);
}

TEST(Transforms, MeanMatchingPreservesBrightnessStatistic) {
  // The Proposition 1 mechanism against RTF bins: warped variants carry
  // exactly the original's mean pixel value.
  common::Rng rng(101);
  tensor::Tensor img = random_image(rng, 16);
  MinorRotation mr;
  Shear sh;
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(mr.apply(img, rng)[0].mean(), img.mean(), 1e-12);
    EXPECT_NEAR(sh.apply(img, rng)[0].mean(), img.mean(), 1e-12);
  }
  // Without matching, the zero-filled border visibly shifts the mean.
  MinorRotation raw(15.0, 75.0, /*mean_match=*/false);
  EXPECT_GT(std::abs(raw.apply(img, rng)[0].mean() - img.mean()), 1e-3);
}

TEST(Transforms, ComposeUnionConcatenatesVariants) {
  common::Rng rng(11);
  std::vector<TransformPtr> parts;
  parts.push_back(std::make_unique<MajorRotation>());
  parts.push_back(std::make_unique<HorizontalFlip>());
  Compose combo(std::move(parts), ComposeMode::kUnion);
  EXPECT_EQ(combo.label(), "MR+HFlip");
  EXPECT_EQ(combo.variant_count(), 4u);
  tensor::Tensor img = random_image(rng);
  auto vs = combo.apply(img, rng);
  ASSERT_EQ(vs.size(), 4u);
  EXPECT_TRUE(vs[3] == flip_horizontal(img));
}

TEST(Transforms, ComposeCrossAlsoTransformsEarlierVariants) {
  common::Rng rng(11);
  std::vector<TransformPtr> parts;
  parts.push_back(std::make_unique<MajorRotation>());
  parts.push_back(std::make_unique<HorizontalFlip>());
  Compose combo(std::move(parts), ComposeMode::kCross);
  EXPECT_EQ(combo.variant_count(), 7u);
  tensor::Tensor img = random_image(rng);
  auto vs = combo.apply(img, rng);
  ASSERT_EQ(vs.size(), 7u);
  // Rotations first, then flipped rotations, then the flip of the original.
  EXPECT_TRUE(vs[0] == rotate90(img));
  EXPECT_TRUE(vs[3] == flip_horizontal(rotate90(img)));
  EXPECT_TRUE(vs[6] == flip_horizontal(img));
}

TEST(Transforms, ParseRoundTrip) {
  EXPECT_EQ(parse_transform_kind("MR"), TransformKind::kMajorRotation);
  EXPECT_EQ(parse_transform_kind("mR"), TransformKind::kMinorRotation);
  EXPECT_EQ(parse_transform_kind("SH"), TransformKind::kShear);
  EXPECT_EQ(parse_transform_kind("HFlip"), TransformKind::kHorizontalFlip);
  EXPECT_EQ(parse_transform_kind("VFlip"), TransformKind::kVerticalFlip);
  EXPECT_EQ(parse_transform_kind("none"), TransformKind::kNone);
  EXPECT_THROW(parse_transform_kind("bogus"), ConfigError);
}

TEST(Policy, EmptyPolicyIsIdentity) {
  common::Rng rng(12);
  AugmentationPolicy policy;
  EXPECT_TRUE(policy.empty());
  EXPECT_EQ(policy.label(), "WO");
  data::Batch batch{tensor::Tensor::rand({2, 3, 8, 8}, rng), {0, 1}};
  data::Batch out = policy.augment(batch, rng);
  EXPECT_TRUE(out.images == batch.images);
}

TEST(Policy, AugmentKeepsOriginalsFirstAndCopiesLabels) {
  common::Rng rng(13);
  auto policy = make_policy({TransformKind::kMajorRotation});
  EXPECT_EQ(policy.variants_per_image(), 3u);
  data::Batch batch{tensor::Tensor::rand({2, 3, 8, 8}, rng), {5, 7}};
  data::Batch out = policy.augment(batch, rng);
  // D' = 2 originals + 2*3 rotations.
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(out.images.dim(0), 8u);
  // Originals first, in order.
  EXPECT_TRUE(out.images.slice(0) == batch.images.slice(0));
  EXPECT_TRUE(out.images.slice(1) == batch.images.slice(1));
  // Variant labels copy their original's.
  EXPECT_EQ(out.labels, (std::vector<index_t>{5, 7, 5, 5, 5, 7, 7, 7}));
  // The rotations really are rotations of the right original.
  EXPECT_TRUE(out.images.slice(2) == rotate90(batch.images.slice(0)));
  EXPECT_TRUE(out.images.slice(5) == rotate90(batch.images.slice(1)));
}

TEST(Policy, CompositePolicyIsCrossIntegrated) {
  auto policy = make_policy(
      {TransformKind::kMajorRotation, TransformKind::kShear});
  EXPECT_EQ(policy.label(), "MR+SH");
  // Integration (Section 4): rotations + shear + sheared rotations.
  EXPECT_EQ(policy.variants_per_image(), 7u);
}

TEST(Policy, NoneEntriesSkipped) {
  auto policy = make_policy({TransformKind::kNone});
  EXPECT_TRUE(policy.empty());
  auto mixed = make_policy({TransformKind::kNone, TransformKind::kShear});
  EXPECT_EQ(mixed.label(), "SH");
}

// Property sweep: every single-transform policy preserves original slots and
// produces B*(1+v) images.
class PolicySweep : public ::testing::TestWithParam<TransformKind> {};

TEST_P(PolicySweep, BatchGeometry) {
  common::Rng rng(14);
  auto policy = make_policy({GetParam()});
  const index_t v = policy.variants_per_image();
  data::Batch batch{tensor::Tensor::rand({3, 3, 8, 8}, rng), {0, 1, 2}};
  data::Batch out = policy.augment(batch, rng);
  EXPECT_EQ(out.size(), 3 * (1 + v));
  for (index_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(out.images.slice(i) == batch.images.slice(i));
    EXPECT_EQ(out.labels[i], batch.labels[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransforms, PolicySweep,
    ::testing::Values(TransformKind::kMajorRotation,
                      TransformKind::kMinorRotation, TransformKind::kShear,
                      TransformKind::kHorizontalFlip,
                      TransformKind::kVerticalFlip));

}  // namespace
}  // namespace oasis::augment
