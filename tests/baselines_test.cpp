// Tests for the baseline defenses (DP mechanism, pruning), the update
// postprocessor wiring, and implant detection.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/cah.h"
#include "attack/detection.h"
#include "attack/rtf.h"
#include "core/baselines.h"
#include "core/experiment.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "nn/model_io.h"
#include "nn/models.h"

namespace oasis::core {
namespace {

std::vector<tensor::Tensor> toy_grads() {
  return {tensor::Tensor({2, 2}, {3.0, -4.0, 0.0, 0.0}),
          tensor::Tensor({2}, {0.0, 12.0})};
}

TEST(DpMechanism, ClipsGlobalNormWithoutNoise) {
  DpGaussianMechanism dp(/*clip_norm=*/6.5, /*noise_multiplier=*/0.0);
  common::Rng rng(1);
  // Global norm = sqrt(9+16+144) = 13 → scale 0.5.
  const auto out = dp.process(toy_grads(), rng);
  EXPECT_DOUBLE_EQ(out[0][0], 1.5);
  EXPECT_DOUBLE_EQ(out[0][1], -2.0);
  EXPECT_DOUBLE_EQ(out[1][1], 6.0);
}

TEST(DpMechanism, LeavesSmallUpdatesUnclipped) {
  DpGaussianMechanism dp(100.0, 0.0);
  common::Rng rng(2);
  const auto out = dp.process(toy_grads(), rng);
  EXPECT_DOUBLE_EQ(out[0][0], 3.0);
  EXPECT_DOUBLE_EQ(out[1][1], 12.0);
}

TEST(DpMechanism, NoiseHasCalibratedScale) {
  const real clip = 2.0, sigma = 0.5;
  DpGaussianMechanism dp(clip, sigma);
  common::Rng rng(3);
  // Zero gradients: output is pure noise with stddev sigma*clip = 1.
  std::vector<tensor::Tensor> zeros{tensor::Tensor({10000})};
  const auto out = dp.process(zeros, rng);
  real sq = 0.0;
  for (const auto v : out[0].data()) sq += v * v;
  const real stddev = std::sqrt(sq / 10000.0);
  EXPECT_NEAR(stddev, 1.0, 0.05);
}

TEST(DpMechanism, RejectsBadParameters) {
  EXPECT_THROW(DpGaussianMechanism(0.0, 1.0), Error);
  EXPECT_THROW(DpGaussianMechanism(1.0, -0.1), Error);
}

TEST(TopKPruning, KeepsExactlyTheLargestEntries) {
  TopKPruning prune(0.5);
  common::Rng rng(4);
  std::vector<tensor::Tensor> grads{
      tensor::Tensor({4}, {0.1, -5.0, 2.0, -0.2})};
  const auto out = prune.process(grads, rng);
  EXPECT_DOUBLE_EQ(out[0][0], 0.0);
  EXPECT_DOUBLE_EQ(out[0][1], -5.0);
  EXPECT_DOUBLE_EQ(out[0][2], 2.0);
  EXPECT_DOUBLE_EQ(out[0][3], 0.0);
}

TEST(TopKPruning, KeepAllIsIdentity) {
  TopKPruning prune(1.0);
  common::Rng rng(5);
  auto grads = toy_grads();
  const auto out = prune.process(grads, rng);
  EXPECT_TRUE(out[0] == grads[0]);
  EXPECT_TRUE(out[1] == grads[1]);
}

TEST(TopKPruning, SparsityMatchesFraction) {
  TopKPruning prune(0.1);
  common::Rng rng(6);
  std::vector<tensor::Tensor> grads{tensor::Tensor::randn({1000}, rng)};
  const auto out = prune.process(grads, rng);
  index_t nonzero = 0;
  for (const auto v : out[0].data()) {
    if (v != 0.0) ++nonzero;
  }
  EXPECT_NEAR(static_cast<real>(nonzero), 100.0, 5.0);
  EXPECT_THROW(TopKPruning(0.0), Error);
  EXPECT_THROW(TopKPruning(1.5), Error);
}

TEST(Postprocessor, ClientAppliesItBeforeUpload) {
  data::SynthConfig cfg;
  cfg.num_classes = 4;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 2;
  cfg.test_per_class = 0;
  auto dataset = data::generate(cfg).train;
  const fl::ModelFactory factory = [] {
    common::Rng rng(9);
    return nn::make_mlp({3, 8, 8}, {8}, 4, rng);
  };
  fl::Client client(0, dataset, factory, 4,
                    std::make_shared<fl::IdentityPreprocessor>(),
                    common::Rng(10));
  // Mechanism with zero noise and tiny clip: every uploaded tensor must have
  // tiny global norm.
  client.set_update_postprocessor(
      std::make_shared<DpGaussianMechanism>(1e-3, 0.0));
  auto model = factory();
  fl::GlobalModelMessage msg;
  msg.model_state = nn::serialize_state(*model);
  const auto update = client.handle_round(msg);
  const auto grads = tensor::deserialize_tensors(update.gradients);
  real sq = 0.0;
  for (const auto& g : grads) {
    for (const auto v : g.data()) sq += v * v;
  }
  EXPECT_NEAR(std::sqrt(sq), 1e-3, 1e-9);
}

TEST(Baselines, DpNoiseBlindsRtfButOasisKeepsGradientsExact) {
  data::SynthConfig cfg;
  cfg.num_classes = 10;
  cfg.height = cfg.width = 12;
  cfg.train_per_class = 3;
  cfg.test_per_class = 0;
  auto victim = data::generate(cfg).train;
  cfg.seed ^= 77;
  auto aux = data::generate(cfg).train;

  AttackExperimentConfig exp;
  exp.attack = AttackKind::kRtf;
  exp.batch_size = 4;
  exp.neurons = 100;
  exp.num_batches = 2;
  exp.seed = 5;
  const auto undefended = run_attack_experiment(victim, aux, exp);
  exp.postprocessor = std::make_shared<DpGaussianMechanism>(1.0, 1e-2);
  const auto dp = run_attack_experiment(victim, aux, exp);
  EXPECT_GT(undefended.mean_psnr(), 80.0);
  EXPECT_LT(dp.mean_psnr(), 30.0);
}

TEST(Detection, RtfImplantIsConspicuous) {
  data::SynthConfig cfg;
  cfg.num_classes = 6;
  cfg.height = cfg.width = 10;
  cfg.train_per_class = 4;
  cfg.test_per_class = 0;
  auto aux = data::generate(cfg).train;
  const nn::ImageSpec spec{3, 10, 10};
  common::Rng rng(11);

  auto honest = nn::make_attack_host(spec, 40, 6, rng);
  const auto honest_report = attack::inspect_first_dense(*honest);
  EXPECT_FALSE(honest_report.suspicious());
  EXPECT_LT(honest_report.row_duplication, 0.01);

  attack::RtfAttack rtf(spec, 40, aux);
  auto rtf_host = nn::make_attack_host(spec, 40, 6, rng);
  rtf.implant(*rtf_host);
  const auto rtf_report = attack::inspect_first_dense(*rtf_host);
  EXPECT_TRUE(rtf_report.suspicious());
  EXPECT_DOUBLE_EQ(rtf_report.row_duplication, 1.0);
  EXPECT_GT(rtf_report.bias_monotonicity, 0.95);
}

TEST(Detection, CahImplantEvadesTheScreens) {
  data::SynthConfig cfg;
  cfg.num_classes = 6;
  cfg.height = cfg.width = 10;
  cfg.train_per_class = 4;
  cfg.test_per_class = 0;
  auto aux = data::generate(cfg).train;
  const nn::ImageSpec spec{3, 10, 10};
  common::Rng rng(12);
  attack::CahAttack cah(spec, 40, 0.2, aux);
  auto host = nn::make_attack_host(spec, 40, 6, rng);
  cah.implant(*host);
  const auto report = attack::inspect_first_dense(*host);
  EXPECT_FALSE(report.suspicious());
  EXPECT_LT(report.row_duplication, 0.01);
  EXPECT_LT(report.bias_monotonicity, 0.8);
}

}  // namespace
}  // namespace oasis::core
