// Chaos suite: randomized fault-injection runs against the fault-tolerant
// round engine (ctest label "chaos", also exercised under ASan/UBSan and
// TSan by ci.sh).
//
// Properties pinned here:
//   * no FaultPlan can crash or hang the simulation — the only escapes are
//     the typed QuorumError / TimeoutError, and global model parameters stay
//     finite through arbitrary corruption and poisoning;
//   * chaos runs are deterministic: identical final model bytes and
//     identical fl.* obs counters at 1 vs 8 threads for the same plan;
//   * quorum-met rounds commit, quorum-missed rounds abort with QuorumError
//     and roll the global model back bit-exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>

#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/fault.h"
#include "fl/server.h"
#include "fl/simulation.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace oasis::fl {
namespace {

data::InMemoryDataset tiny_dataset(index_t per_class, std::uint64_t seed) {
  data::SynthConfig cfg;
  cfg.num_classes = 4;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = per_class;
  cfg.test_per_class = 0;
  cfg.seed = seed;
  return data::generate(cfg).train;
}

ModelFactory tiny_factory(std::uint64_t seed) {
  return [seed] {
    common::Rng rng(seed);
    return nn::make_mlp({3, 8, 8}, {16}, 4, rng);
  };
}

std::unique_ptr<Simulation> make_federation(const data::InMemoryDataset& data,
                                            index_t n_clients,
                                            SimulationConfig config) {
  const auto shards = data.shard(n_clients);
  std::vector<std::unique_ptr<Client>> clients;
  for (index_t i = 0; i < n_clients; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, shards[i], tiny_factory(40), /*batch_size=*/3,
        std::make_shared<IdentityPreprocessor>(), common::Rng(500 + i)));
  }
  auto server = std::make_unique<Server>(tiny_factory(40)(), 0.1);
  // The norm screen is what keeps norm-scaled poison (finite but huge) out
  // of the model; honest gradients in this federation have norm ≪ 1e4.
  ValidationConfig vc;
  vc.max_grad_norm = 1e4;
  server->set_validation(vc);
  return std::make_unique<Simulation>(std::move(server), std::move(clients),
                                      config);
}

/// The acceptance-criteria fault mix: dropout 0.3, corruption 0.1,
/// straggler 0.2 (some delays past the deadline), quorum 0.5.
FaultConfig acceptance_faults(std::uint64_t seed) {
  FaultConfig fc;
  fc.dropout_prob = 0.3;
  fc.corrupt_prob = 0.1;
  fc.straggler_prob = 0.2;
  fc.poison_prob = 0.1;
  fc.straggler_min_ticks = 50;
  fc.straggler_max_ticks = 900;  // deadline is 500: some delays time out
  fc.seed = seed;
  return fc;
}

SimulationConfig acceptance_config(real quorum) {
  SimulationConfig sc;
  sc.clients_per_round = 4;
  sc.seed = 11;
  sc.quorum_fraction = quorum;
  sc.max_attempts = 3;
  sc.deadline_ticks = 500;
  sc.retry_backoff_ticks = 100;
  sc.base_latency_ticks = 10;
  return sc;
}

struct ChaosResult {
  tensor::ByteBuffer final_state;
  std::map<std::string, std::uint64_t> fl_counters;
  index_t aborts = 0;
  index_t completed = 0;
};

ChaosResult run_chaos(const data::InMemoryDataset& data, index_t n_clients,
                      SimulationConfig sc, const FaultConfig& fc,
                      index_t rounds) {
  obs::Registry::global().reset();
  auto sim = make_federation(data, n_clients, sc);
  sim->set_fault_plan(FaultPlan(fc));
  ChaosResult result;
  for (index_t r = 0; r < rounds; ++r) {
    try {
      sim->run_round();
      ++result.completed;
    } catch (const QuorumError&) {
      ++result.aborts;
    }
  }
  result.final_state = nn::serialize_state(sim->server().global_model());
  for (const auto& [name, value] : obs::Registry::global().counters()) {
    if (name.rfind("fl.", 0) == 0) result.fl_counters[name] = value;
  }
  return result;
}

bool state_is_finite(const tensor::ByteBuffer& state) {
  const auto tensors = tensor::deserialize_tensors(state);
  for (const auto& t : tensors) {
    for (const auto v : t.data()) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

TEST(ChaosTest, RandomizedPlansNeverCrashAndModelStaysFinite) {
  const auto data = tiny_dataset(6, 77);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    common::Rng meta(seed * 7919 + 13);
    FaultConfig fc;
    fc.dropout_prob = meta.uniform(0.0, 0.25);
    fc.straggler_prob = meta.uniform(0.0, 0.25);
    fc.corrupt_prob = meta.uniform(0.0, 0.25);
    fc.poison_prob = meta.uniform(0.0, 0.25);
    fc.straggler_min_ticks = 10;
    fc.straggler_max_ticks =
        static_cast<std::uint64_t>(meta.uniform_int(20, 900));
    fc.seed = seed;

    SimulationConfig sc;
    sc.clients_per_round = 0;  // all 3 clients
    sc.seed = seed + 1;
    sc.quorum_fraction = meta.bernoulli(0.5) ? 0.5 : 0.0;
    sc.max_attempts = static_cast<index_t>(meta.uniform_int(1, 3));
    sc.deadline_ticks = 500;

    const ChaosResult r = run_chaos(data, /*n_clients=*/3, sc, fc,
                                    /*rounds=*/3);
    EXPECT_TRUE(state_is_finite(r.final_state)) << "seed " << seed;
    EXPECT_EQ(r.aborts + r.completed, 3u) << "seed " << seed;
  }
}

TEST(ChaosTest, SeededChaosRunIsDeterministicAcrossThreadCounts) {
  const auto data = tiny_dataset(8, 88);
  const FaultConfig fc = acceptance_faults(123);
  const SimulationConfig sc = acceptance_config(0.5);

  runtime::set_num_threads(1);
  const ChaosResult serial = run_chaos(data, 8, sc, fc, /*rounds=*/20);
  runtime::set_num_threads(8);
  const ChaosResult parallel = run_chaos(data, 8, sc, fc, /*rounds=*/20);
  runtime::set_num_threads(0);

  // Identical final model hash (byte identity is stronger) and identical
  // per-fault-type rejection counters — the acceptance criterion.
  EXPECT_EQ(serial.final_state, parallel.final_state);
  EXPECT_EQ(serial.fl_counters, parallel.fl_counters);
  EXPECT_EQ(serial.aborts, parallel.aborts);
  // The run must actually have exercised the fault machinery.
  EXPECT_GT(serial.fl_counters.at("fl.fault.dropout"), 0u);
  EXPECT_GT(serial.fl_counters.at("fl.validate.rejected"), 0u);
  EXPECT_GT(serial.completed, 0u);
}

TEST(ChaosTest, UnmetQuorumAbortsWithTypedErrorAndRollsBackBitExactly) {
  const auto data = tiny_dataset(8, 88);
  SimulationConfig sc = acceptance_config(1.0);  // every client must be valid
  auto sim = make_federation(data, 8, sc);
  sim->set_fault_plan(FaultPlan(acceptance_faults(123)));

  index_t aborts = 0;
  for (index_t r = 0; r < 20; ++r) {
    const auto before = nn::serialize_state(sim->server().global_model());
    const auto round_before = sim->server().round();
    try {
      sim->run_round();
    } catch (const QuorumError&) {
      ++aborts;
      const auto after = nn::serialize_state(sim->server().global_model());
      EXPECT_EQ(before, after) << "abort must roll back bit-exactly";
      EXPECT_EQ(sim->server().round(), round_before)
          << "aborted round must not advance the protocol round";
    }
  }
  EXPECT_GT(aborts, 0u) << "quorum 1.0 under this fault mix must abort";
  EXPECT_EQ(obs::counter("fl.rounds_aborted").value() > 0, true);
}

TEST(ChaosTest, QuorumMetRoundsCommitAndTrainingProgresses) {
  const auto data = tiny_dataset(8, 88);
  auto sim = make_federation(data, 8, acceptance_config(0.5));
  sim->set_fault_plan(FaultPlan(acceptance_faults(123)));
  const auto initial = nn::serialize_state(sim->server().global_model());

  obs::Registry::global().reset();
  index_t committed = 0;
  for (index_t r = 0; r < 20; ++r) {
    try {
      sim->run_round();
      ++committed;
    } catch (const QuorumError&) {
    }
  }
  EXPECT_GT(committed, 0u);
  EXPECT_EQ(obs::counter("fl.rounds").value(), committed);
  EXPECT_NE(nn::serialize_state(sim->server().global_model()), initial)
      << "committed rounds must advance the model";
  EXPECT_GT(sim->clock().now(), 0u);
}

TEST(ChaosTest, StrictModeRaisesTimeoutErrorWhenClientsAreLost) {
  const auto data = tiny_dataset(6, 77);
  SimulationConfig sc;
  sc.seed = 5;
  sc.max_attempts = 2;
  sc.fail_on_lost = true;
  auto sim = make_federation(data, 3, sc);
  FaultConfig fc;
  fc.dropout_prob = 1.0;
  fc.seed = 9;
  sim->set_fault_plan(FaultPlan(fc));
  EXPECT_THROW(sim->run_round(), TimeoutError);
}

TEST(ChaosTest, VirtualClockAdvancesWithDeadlinesAndBackoff) {
  const auto data = tiny_dataset(6, 77);
  // Fault-free: each round costs exactly the base round-trip latency.
  SimulationConfig sc;
  sc.seed = 5;
  sc.base_latency_ticks = 10;
  {
    auto sim = make_federation(data, 3, sc);
    sim->run(4);
    EXPECT_EQ(sim->clock().now(), 4u * 10u);
  }
  // All-dropout: every attempt waits out the full deadline plus linear
  // backoff before the next try — per round: 500 + (1·100 + 500) = 1100.
  sc.max_attempts = 2;
  sc.deadline_ticks = 500;
  sc.retry_backoff_ticks = 100;
  {
    auto sim = make_federation(data, 3, sc);
    FaultConfig fc;
    fc.dropout_prob = 1.0;
    fc.seed = 9;
    sim->set_fault_plan(FaultPlan(fc));
    sim->run_round();
    EXPECT_EQ(sim->clock().now(), 1100u);
  }
}

TEST(ChaosTest, FaultPlanDecisionsArePureFunctionsOfTheTuple) {
  const FaultPlan plan(acceptance_faults(42));
  // Same tuple twice, interleaved with other queries: identical decisions.
  for (std::uint64_t ticket = 0; ticket < 8; ++ticket) {
    for (std::uint64_t client = 0; client < 8; ++client) {
      const ClientFault a = plan.decide(ticket, 0, client);
      (void)plan.decide(ticket + 1, 1, client + 3);  // unrelated query
      const ClientFault b = plan.decide(ticket, 0, client);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.delay_ticks, b.delay_ticks);
      EXPECT_EQ(static_cast<int>(a.corruption), static_cast<int>(b.corruption));
      EXPECT_EQ(static_cast<int>(a.poison), static_cast<int>(b.poison));
    }
  }
  // Inert plans decide kNone everywhere.
  const FaultPlan inert;
  EXPECT_FALSE(inert.active());
  EXPECT_EQ(inert.decide(3, 1, 2).kind, FaultKind::kNone);
}

TEST(ChaosTest, FaultConfigValidation) {
  FaultConfig fc;
  fc.dropout_prob = 0.6;
  fc.corrupt_prob = 0.6;  // sums past 1
  EXPECT_THROW(FaultPlan{fc}, ConfigError);
  fc = FaultConfig{};
  fc.dropout_prob = -0.1;
  EXPECT_THROW(FaultPlan{fc}, ConfigError);
  fc = FaultConfig{};
  fc.straggler_prob = 0.2;
  fc.straggler_min_ticks = 100;
  fc.straggler_max_ticks = 10;  // inverted
  EXPECT_THROW(FaultPlan{fc}, ConfigError);
}

}  // namespace
}  // namespace oasis::fl
