// oasis::ckpt tests: container parsing and its exhaustive corruption
// tolerance (every truncation length, hundreds of random bit flips — all
// must surface as typed CheckpointError, never a crash or a silent load),
// atomic-write durability plumbing, generation retention and restore-side
// fallback, and end-to-end resume bit-identity for both the FL simulation
// and the centralized trainer.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/codec.h"
#include "ckpt/container.h"
#include "ckpt/io.h"
#include "ckpt/manager.h"
#include "common/crc32c.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/preprocessor.h"
#include "fl/server.h"
#include "fl/simulation.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "nn/optimizer.h"
#include "obs/obs.h"
#include "tensor/serialize.h"

namespace oasis::ckpt {
namespace {

namespace fs = std::filesystem;
using Reason = CheckpointError::Reason;

/// Fresh per-test scratch directory under the gtest temp root.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fs::path(::testing::TempDir()) / ("oasis_ckpt_" + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] fs::path path() const { return path_; }

 private:
  fs::path path_;
};

ByteBuffer make_small_container() {
  SnapshotBuilder builder;
  builder.add("meta", {1, 2, 3, 4});
  builder.add("empty", {});
  ByteBuffer blob(257);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  builder.add("blob", blob);
  return builder.finish();
}

// ---------------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------------

TEST(Container, RoundTripPreservesSectionsAndOrder) {
  const ByteBuffer bytes = make_small_container();
  const Snapshot snap = Snapshot::parse(bytes);
  EXPECT_EQ(snap.names(), (std::vector<std::string>{"meta", "empty", "blob"}));
  EXPECT_TRUE(snap.has("meta"));
  EXPECT_FALSE(snap.has("nope"));
  EXPECT_EQ(snap.section("meta"), (ByteBuffer{1, 2, 3, 4}));
  EXPECT_TRUE(snap.section("empty").empty());
  EXPECT_EQ(snap.section("blob").size(), 257u);
  EXPECT_THROW(snap.section("nope"), CheckpointError);
}

TEST(Container, BuilderRejectsBadNames) {
  SnapshotBuilder builder;
  builder.add("a", {1});
  EXPECT_THROW(builder.add("a", {2}), Error);     // duplicate
  EXPECT_THROW(builder.add("", {}), Error);       // empty
  EXPECT_THROW(builder.add(std::string(256, 'x'), {}), Error);  // too long
}

TEST(Container, EmptyContainerIsValid) {
  const ByteBuffer bytes = SnapshotBuilder{}.finish();
  const Snapshot snap = Snapshot::parse(bytes);
  EXPECT_TRUE(snap.names().empty());
}

TEST(Container, RejectsBadMagicAndVersion) {
  ByteBuffer bytes = make_small_container();
  ByteBuffer bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  try {
    Snapshot::parse(bad_magic);
    FAIL() << "bad magic accepted";
  } catch (const CheckpointError& e) {
    // The footer CRC runs before the field is interpreted as a magic/version
    // problem only if intact — a flipped magic byte also breaks the footer,
    // so either reason is acceptable as long as it is typed.
    EXPECT_TRUE(e.reason() == Reason::kBadMagic ||
                e.reason() == Reason::kFooterChecksum)
        << CheckpointError::reason_name(e.reason());
  }

  // Splice a wrong version in and RESEAL the footer so the version check
  // itself (not the checksum) has to catch it.
  ByteBuffer wrong_version = bytes;
  wrong_version[8] = 99;
  const std::uint32_t crc = common::crc32c(wrong_version.data(),
                                           wrong_version.size() - 4);
  std::memcpy(wrong_version.data() + wrong_version.size() - 4, &crc, 4);
  try {
    Snapshot::parse(wrong_version);
    FAIL() << "wrong version accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), Reason::kBadVersion);
  }
}

// The headline robustness property (ISSUE satellite): EVERY truncation of a
// valid snapshot — all lengths from 0 to size-1 — must yield a typed
// CheckpointError. No crash, no hang, no silent partial load. Runs under
// ASan in CI, so an out-of-bounds directory read would abort loudly here.
TEST(Container, EveryTruncationLengthIsRejectedTyped) {
  const ByteBuffer bytes = make_small_container();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteBuffer cut(bytes.begin(),
                   bytes.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      Snapshot::parse(std::move(cut));
      FAIL() << "truncation to " << len << " bytes was accepted";
    } catch (const CheckpointError&) {
      // expected — any reason, as long as it is typed.
    }
  }
}

// Same property for point damage: single-bit flips anywhere in the file.
// 200 positions drawn from a fixed-seed RNG (deterministic test), plus both
// edges. A flip can land in the magic, the directory, a payload, or either
// checksum — every one must be caught because the footer CRC covers the
// whole file.
TEST(Container, TwoHundredRandomBitFlipsAreRejectedTyped) {
  const ByteBuffer bytes = make_small_container();
  common::Rng rng(0xB17F11B5);
  std::vector<std::size_t> positions{0, bytes.size() - 1};
  while (positions.size() < 202) {
    positions.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1)));
  }
  for (const std::size_t pos : positions) {
    for (int bit = 0; bit < 8; bit += 7) {  // low and high bit of the byte
      ByteBuffer damaged = bytes;
      damaged[pos] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        Snapshot::parse(std::move(damaged));
        FAIL() << "bit flip at byte " << pos << " bit " << bit
               << " was accepted";
      } catch (const CheckpointError&) {
        // expected
      }
    }
  }
}

// A directory that lies about payload placement must be caught even when
// the footer CRC is valid (the attacker/cosmic ray wrote a consistent but
// malformed file). Reseal after each splice so only the structural checks
// stand between the damage and the caller.
TEST(Container, ResealedStructuralDamageIsStillRejected) {
  const auto reseal = [](ByteBuffer b) {
    const std::uint32_t crc = common::crc32c(b.data(), b.size() - 4);
    std::memcpy(b.data() + b.size() - 4, &crc, 4);
    return b;
  };
  const ByteBuffer bytes = make_small_container();

  // Oversized section count → directory overruns the file.
  ByteBuffer huge_count = bytes;
  huge_count[12] = 0xFF;
  huge_count[13] = 0xFF;
  EXPECT_THROW(Snapshot::parse(reseal(std::move(huge_count))),
               CheckpointError);

  // First section's payload size inflated → payloads no longer tile the
  // body exactly.
  ByteBuffer bad_size = bytes;
  // Directory entry 0: name_len(4) + "meta"(4) → offset u64 at 24, size at 32.
  bad_size[32] ^= 0x40;
  EXPECT_THROW(Snapshot::parse(reseal(std::move(bad_size))), CheckpointError);

  // Payload byte flipped with footer resealed → only the SECTION crc can
  // catch it.
  ByteBuffer bad_payload = bytes;
  bad_payload[bytes.size() - 10] ^= 0x01;  // inside the "blob" payload
  try {
    Snapshot::parse(reseal(std::move(bad_payload)));
    FAIL() << "resealed payload damage accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), Reason::kSectionChecksum);
  }
}

// ---------------------------------------------------------------------------
// Section codec
// ---------------------------------------------------------------------------

TEST(Codec, WriterReaderRoundTrip) {
  SectionWriter w;
  w.u8(7);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1.5);
  w.str("hello");
  const ByteBuffer payload = w.take();

  SectionReader r(payload, "test");
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -1.5);
  EXPECT_EQ(r.str(), "hello");
  r.expect_end();
}

TEST(Codec, ShortAndTrailingBytesAreMalformedSection) {
  SectionWriter w;
  w.u32(1);
  const ByteBuffer payload = w.take();

  SectionReader short_r(payload, "s");
  short_r.u32();
  try {
    short_r.u32();  // nothing left
    FAIL() << "read past the end succeeded";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), Reason::kMalformedSection);
  }

  SectionReader trailing_r(payload, "t");
  EXPECT_THROW(trailing_r.expect_end(), CheckpointError);  // 4 bytes unread
}

// ---------------------------------------------------------------------------
// Durable I/O + manager
// ---------------------------------------------------------------------------

TEST(Io, AtomicWriteRoundTripsAndLeavesNoTmp) {
  ScratchDir dir("io");
  const std::string path = (dir.path() / "file.bin").string();
  const ByteBuffer bytes{1, 2, 3, 4, 5};
  write_file_atomic(path, bytes);
  EXPECT_EQ(read_file(path), bytes);
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Overwrite in place — readers must only ever see old-or-new.
  write_file_atomic(path, {9, 9});
  EXPECT_EQ(read_file(path), (ByteBuffer{9, 9}));
}

TEST(Io, ReadFailuresCarryPathAndErrno) {
  try {
    read_file("/nonexistent/oasis/nowhere.ckpt");
    FAIL() << "read of a missing file succeeded";
  } catch (const IoError& e) {
    EXPECT_EQ(e.path(), "/nonexistent/oasis/nowhere.ckpt");
    EXPECT_NE(e.error_number(), 0);
    EXPECT_NE(std::string(e.what()).find("nowhere.ckpt"), std::string::npos);
  }
}

TEST(Manager, KeepsNewestKAndSweepsTmpLitter) {
  ScratchDir dir("retention");
  CheckpointManager manager(dir.str(), /*keep=*/2);
  for (std::uint64_t gen = 1; gen <= 5; ++gen) {
    ByteBuffer snap = SnapshotBuilder{}.finish();
    manager.save(gen, snap);
  }
  EXPECT_EQ(manager.generations(), (std::vector<std::uint64_t>{4, 5}));

  // Simulated crash litter from an earlier run gets swept on the next save.
  const std::string litter = manager.path_for(99) + ".tmp";
  { std::ofstream(litter) << "torn"; }
  manager.save(6, SnapshotBuilder{}.finish());
  EXPECT_FALSE(fs::exists(litter));
  EXPECT_EQ(manager.generations(), (std::vector<std::uint64_t>{5, 6}));
}

TEST(Manager, FallsBackPastCorruptGenerationsAndCountsThem) {
  ScratchDir dir("fallback");
  obs::Registry::global().reset();
  CheckpointManager manager(dir.str(), /*keep=*/3);

  SnapshotBuilder good;
  good.add("payload", {42});
  manager.save(1, good.finish());
  manager.save(2, good.finish());
  manager.save(3, good.finish());

  // Corrupt the two newest on disk: truncate gen 3, bit-flip gen 2.
  {
    ByteBuffer g3 = read_file(manager.path_for(3));
    g3.resize(g3.size() / 2);
    std::ofstream out(manager.path_for(3), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(g3.data()),
              static_cast<std::streamsize>(g3.size()));
  }
  {
    ByteBuffer g2 = read_file(manager.path_for(2));
    g2[g2.size() / 2] ^= 0x10;
    std::ofstream out(manager.path_for(2), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(g2.data()),
              static_cast<std::streamsize>(g2.size()));
  }

  const CheckpointManager::Loaded loaded = manager.load_latest_valid();
  EXPECT_EQ(loaded.generation, 1u);
  EXPECT_EQ(loaded.snapshot.section("payload"), (ByteBuffer{42}));
  EXPECT_EQ(obs::counter("ckpt.restore.skipped_invalid").value(), 2u);
}

TEST(Manager, AllGenerationsDamagedOrMissingIsTyped) {
  ScratchDir dir("empty");
  CheckpointManager manager(dir.str(), 3);
  try {
    (void)manager.load_latest_valid();
    FAIL() << "empty directory produced a snapshot";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), Reason::kNoValidGeneration);
  }

  manager.save(1, SnapshotBuilder{}.finish());
  {
    std::ofstream out(manager.path_for(1), std::ios::binary | std::ios::trunc);
    out << "not a checkpoint";
  }
  EXPECT_THROW((void)manager.load_latest_valid(), CheckpointError);
}

// ---------------------------------------------------------------------------
// Optimizer state round trip
// ---------------------------------------------------------------------------

TEST(OptimizerState, AdamRoundTripContinuesBitIdentically) {
  common::Rng rng(21);
  auto model_a = nn::make_mlp({3, 8, 8}, {8}, 4, rng);
  common::Rng rng_b(21);
  auto model_b = nn::make_mlp({3, 8, 8}, {8}, 4, rng_b);
  nn::Adam opt_a(model_a->parameters(), {});
  nn::Adam opt_b(model_b->parameters(), {});

  // Drive A a few steps with synthetic gradients, snapshot, load into B,
  // then drive both with the SAME gradients: trajectories must be equal.
  const auto fill_grads = [](nn::Sequential& m, real v) {
    for (auto* p : m.parameters()) {
      for (auto& g : p->grad.data()) g = v;
    }
  };
  for (int i = 1; i <= 3; ++i) {
    fill_grads(*model_a, real(0.01) * i);
    opt_a.step();
  }
  const auto state = tensor::serialize_tensors(opt_a.state_tensors());
  opt_b.load_state_tensors(tensor::deserialize_tensors(state));
  nn::deserialize_state(*model_b, nn::serialize_state(*model_a));

  fill_grads(*model_a, 0.05);
  fill_grads(*model_b, 0.05);
  opt_a.step();
  opt_b.step();
  EXPECT_EQ(nn::serialize_state(*model_a), nn::serialize_state(*model_b));
}

// ---------------------------------------------------------------------------
// Simulation checkpoint / restore
// ---------------------------------------------------------------------------

fl::Simulation make_federation(std::uint64_t seed) {
  data::SynthConfig cfg;
  cfg.num_classes = 4;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 4;
  cfg.test_per_class = 0;

  const fl::ModelFactory factory = [seed] {
    common::Rng rng(seed ^ 0x5EED);
    return nn::make_mlp({3, 8, 8}, {8}, 4, rng);
  };
  auto server = std::make_unique<fl::Server>(factory(), /*learning_rate=*/0.05);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (std::uint64_t id = 0; id < 3; ++id) {
    cfg.seed = 100 + id;
    clients.push_back(std::make_unique<fl::Client>(
        id, data::generate(cfg).train, factory, /*batch_size=*/3,
        std::make_shared<fl::IdentityPreprocessor>(),
        common::Rng(seed ^ (0xC11E + id))));
  }
  return fl::Simulation(std::move(server), std::move(clients),
                        fl::SimulationConfig{/*clients_per_round=*/2, seed});
}

/// Obs dump with timings off and the one contracted exclusion (counters
/// under "ckpt.restore", which record the restore itself) filtered out.
std::string comparable_obs_dump() {
  std::stringstream filtered;
  std::stringstream src(
      obs::to_json(obs::Registry::global(), {/*include_timings=*/false}));
  std::string line;
  while (std::getline(src, line)) {
    if (line.find("ckpt.restore") == std::string::npos) filtered << line << '\n';
  }
  return filtered.str();
}

TEST(SimulationCkpt, ResumedRunIsBitIdenticalToStraightRun) {
  // Straight run: 6 rounds, with a mid-flight encode so the save counter
  // matches the resumed timeline.
  obs::Registry::global().reset();
  fl::Simulation straight = make_federation(33);
  straight.run(3);
  (void)straight.encode_checkpoint();
  straight.run(3);
  const tensor::ByteBuffer straight_model =
      nn::serialize_state(straight.server().global_model());
  const std::string straight_obs = comparable_obs_dump();

  // Interrupted run: 3 rounds, snapshot, then a COLD federation (fresh
  // process stand-in: new objects, reset registry) restores and finishes.
  obs::Registry::global().reset();
  fl::Simulation first_half = make_federation(33);
  first_half.run(3);
  const tensor::ByteBuffer snapshot = first_half.encode_checkpoint();

  obs::Registry::global().reset();
  fl::Simulation resumed = make_federation(33);
  resumed.restore_checkpoint(snapshot);
  EXPECT_EQ(resumed.server().round(), 3u);
  resumed.run(3);

  EXPECT_EQ(nn::serialize_state(resumed.server().global_model()),
            straight_model);
  EXPECT_EQ(comparable_obs_dump(), straight_obs);
}

TEST(SimulationCkpt, RestoreIntoMismatchedFederationIsRejectedUntouched) {
  obs::Registry::global().reset();
  fl::Simulation source = make_federation(33);
  source.run(2);
  const tensor::ByteBuffer snapshot = source.encode_checkpoint();

  // Different seed → different config echo: must be refused BEFORE any live
  // state is touched.
  fl::Simulation other = make_federation(34);
  other.run(1);
  const tensor::ByteBuffer before =
      nn::serialize_state(other.server().global_model());
  try {
    other.restore_checkpoint(snapshot);
    FAIL() << "foreign snapshot accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), Reason::kStateMismatch);
  }
  EXPECT_EQ(nn::serialize_state(other.server().global_model()), before);
  EXPECT_EQ(other.server().round(), 1u);
}

TEST(SimulationCkpt, CorruptedSimulationSnapshotsAreAllTyped) {
  // The full-size artifact (real model + rng + obs sections): every
  // truncation and a spread of bit flips must still be typed errors.
  obs::Registry::global().reset();
  fl::Simulation sim = make_federation(5);
  sim.run(1);
  const tensor::ByteBuffer bytes = sim.encode_checkpoint();

  for (std::size_t len = 0; len < bytes.size();
       len += (len < 64 ? 1 : 97)) {  // dense at the header, strided after
    tensor::ByteBuffer cut(bytes.begin(),
                           bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(Snapshot::parse(std::move(cut)), CheckpointError)
        << "at truncation " << len;
  }
  common::Rng rng(0xF11B);
  for (int i = 0; i < 200; ++i) {
    tensor::ByteBuffer damaged = bytes;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    damaged[pos] ^= static_cast<std::uint8_t>(
        1u << rng.uniform_int(0, 7));
    EXPECT_THROW(Snapshot::parse(std::move(damaged)), CheckpointError)
        << "bit flip at " << pos;
  }
}

TEST(SimulationCkpt, SaveAndResumeThroughManagerPicksNewestValid) {
  ScratchDir dir("sim_mgr");
  obs::Registry::global().reset();
  CheckpointManager manager(dir.str(), /*keep=*/3);

  fl::Simulation sim = make_federation(77);
  sim.run(2);
  (void)sim.save_checkpoint(manager);  // generation 2
  sim.run(2);
  const std::string path4 = sim.save_checkpoint(manager);  // generation 4
  EXPECT_EQ(manager.generations(), (std::vector<std::uint64_t>{2, 4}));

  // Damage the newest: resume must fall back to generation 2.
  {
    ByteBuffer g4 = read_file(path4);
    g4[g4.size() / 3] ^= 0x80;
    std::ofstream out(path4, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(g4.data()),
              static_cast<std::streamsize>(g4.size()));
  }
  obs::Registry::global().reset();
  fl::Simulation resumed = make_federation(77);
  EXPECT_EQ(resumed.resume_from(manager), 2u);
  EXPECT_EQ(resumed.server().round(), 2u);
}

// ---------------------------------------------------------------------------
// Trainer checkpoint / resume
// ---------------------------------------------------------------------------

TEST(TrainerCkpt, InterruptedTrainingResumesBitIdentically) {
  ScratchDir dir("trainer");
  data::SynthConfig cfg;
  cfg.num_classes = 4;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 6;
  cfg.test_per_class = 2;
  cfg.seed = 909;
  const data::SynthDataset data = data::generate(cfg);

  const auto make_model = [] {
    common::Rng rng(404);
    return nn::make_mlp({3, 8, 8}, {8}, 4, rng);
  };
  core::TrainerConfig config;
  config.epochs = 6;
  config.batch_size = 4;
  config.seed = 11;
  config.eval_every = 0;

  // Straight: 6 epochs, no checkpointing.
  obs::Registry::global().reset();
  auto straight = make_model();
  const core::TrainResult straight_result =
      core::train_classifier(*straight, data.train, data.test, config);

  // Interrupted: 4 epochs with checkpoints every 2, then a fresh model
  // resumes to 6.
  obs::Registry::global().reset();
  auto first = make_model();
  core::TrainerConfig half = config;
  half.epochs = 4;
  half.checkpoint_dir = dir.str();
  half.checkpoint_every = 2;
  (void)core::train_classifier(*first, data.train, data.test, half);

  obs::Registry::global().reset();
  auto resumed = make_model();
  core::TrainerConfig rest = config;
  rest.checkpoint_dir = dir.str();
  rest.checkpoint_every = 2;
  rest.resume = true;
  const core::TrainResult resumed_result =
      core::train_classifier(*resumed, data.train, data.test, rest);

  EXPECT_EQ(nn::serialize_state(*resumed), nn::serialize_state(*straight));
  ASSERT_EQ(resumed_result.epoch_loss.size(),
            straight_result.epoch_loss.size());
  for (std::size_t i = 0; i < resumed_result.epoch_loss.size(); ++i) {
    EXPECT_EQ(resumed_result.epoch_loss[i], straight_result.epoch_loss[i])
        << "epoch " << i;
  }
  EXPECT_EQ(resumed_result.final_test_accuracy,
            straight_result.final_test_accuracy);
}

TEST(TrainerCkpt, ResumeWithEmptyDirectoryStartsFresh) {
  ScratchDir dir("trainer_fresh");
  data::SynthConfig cfg;
  cfg.num_classes = 2;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 4;
  cfg.test_per_class = 2;
  cfg.seed = 1;
  const data::SynthDataset data = data::generate(cfg);
  common::Rng rng(3);
  auto model = nn::make_mlp({3, 8, 8}, {8}, 2, rng);

  core::TrainerConfig config;
  config.epochs = 2;
  config.batch_size = 4;
  config.checkpoint_dir = dir.str();
  config.resume = true;  // nothing there: must start from scratch, not throw
  const core::TrainResult result =
      core::train_classifier(*model, data.train, data.test, config);
  EXPECT_EQ(result.epoch_loss.size(), 2u);
}

TEST(TrainerCkpt, ForeignTrainerSnapshotIsRefused) {
  ScratchDir dir("trainer_foreign");
  data::SynthConfig cfg;
  cfg.num_classes = 2;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 4;
  cfg.test_per_class = 2;
  cfg.seed = 2;
  const data::SynthDataset data = data::generate(cfg);
  common::Rng rng(5);
  auto model = nn::make_mlp({3, 8, 8}, {8}, 2, rng);

  core::TrainerConfig config;
  config.epochs = 1;
  config.batch_size = 4;
  config.seed = 21;
  config.checkpoint_dir = dir.str();
  (void)core::train_classifier(*model, data.train, data.test, config);

  // Same directory, different run identity (seed) → kStateMismatch.
  common::Rng rng2(5);
  auto model2 = nn::make_mlp({3, 8, 8}, {8}, 2, rng2);
  core::TrainerConfig other = config;
  other.seed = 22;
  other.resume = true;
  try {
    (void)core::train_classifier(*model2, data.train, data.test, other);
    FAIL() << "foreign trainer snapshot accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), Reason::kStateMismatch);
  }
}

}  // namespace
}  // namespace oasis::ckpt
