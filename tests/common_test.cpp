// Tests for the common utilities: CLI parsing, logging levels, error
// macros, stopwatch; plus serialization robustness (fuzz) and experiment
// determinism properties.
#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/experiment.h"
#include "data/synthetic.h"
#include "tensor/serialize.h"

namespace oasis {
namespace {

TEST(Cli, ParsesAllValueForms) {
  common::CliParser cli("prog", "test");
  cli.add_flag("alpha", "a value", "1");
  cli.add_flag("beta", "another", "x");
  cli.add_bool("gamma", "a switch");
  const char* argv[] = {"prog", "--alpha", "42", "--beta=hello", "--gamma"};
  cli.parse(5, argv);
  EXPECT_EQ(cli.get_int("alpha"), 42);
  EXPECT_EQ(cli.get("beta"), "hello");
  EXPECT_TRUE(cli.get_bool("gamma"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  common::CliParser cli("prog", "test");
  cli.add_flag("rate", "r", "0.5");
  cli.add_bool("quick", "q");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_DOUBLE_EQ(cli.get_real("rate"), 0.5);
  EXPECT_FALSE(cli.get_bool("quick"));
}

TEST(Cli, RejectsUnknownAndMalformed) {
  common::CliParser cli("prog", "test");
  cli.add_flag("known", "k", "1");
  {
    const char* argv[] = {"prog", "--unknown", "3"};
    EXPECT_THROW(cli.parse(3, argv), ConfigError);
  }
  {
    const char* argv[] = {"prog", "positional"};
    EXPECT_THROW(cli.parse(2, argv), ConfigError);
  }
  {
    const char* argv[] = {"prog", "--known"};
    EXPECT_THROW(cli.parse(2, argv), ConfigError);  // missing value
  }
}

TEST(Cli, TypeErrorsAreReported) {
  common::CliParser cli("prog", "test");
  cli.add_flag("n", "count", "not-a-number");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_THROW((void)cli.get_int("n"), ConfigError);
  EXPECT_THROW((void)cli.get_real("n"), ConfigError);
  EXPECT_THROW((void)cli.get("unregistered"), Error);
}

TEST(Cli, IntegerParsingRejectsTrailingGarbageAndOverflow) {
  common::CliParser cli("prog", "test");
  cli.add_flag("n", "count", "0");
  const auto set = [&](const char* v) {
    const std::string arg = std::string("--n=") + v;
    const char* argv[] = {"prog", arg.c_str()};
    cli.parse(2, argv);
  };
  // std::stoll would have accepted all of these prefixes silently.
  for (const char* bad : {"12x", "1e3", "0x10", "3.5", " 7", "7 ", "--", ""}) {
    set(bad);
    EXPECT_THROW((void)cli.get_int("n"), ConfigError) << "input: " << bad;
  }
  set("9223372036854775808");  // INT64_MAX + 1
  EXPECT_THROW((void)cli.get_int("n"), ConfigError);
  set("-9223372036854775809");  // INT64_MIN - 1
  EXPECT_THROW((void)cli.get_int("n"), ConfigError);
  set("9223372036854775807");
  EXPECT_EQ(cli.get_int("n"), INT64_MAX);
  set("-42");
  EXPECT_EQ(cli.get_int("n"), -42);
}

TEST(Cli, UnsignedParsingRejectsNegativeValues) {
  common::CliParser cli("prog", "test");
  cli.add_flag("every", "interval", "0");
  const auto set = [&](const char* v) {
    const std::string arg = std::string("--every=") + v;
    const char* argv[] = {"prog", arg.c_str()};
    cli.parse(2, argv);
  };
  // strtoull would wrap "-1" to 2^64-1 — the classic silent catastrophe for
  // a count flag like --checkpoint-every.
  for (const char* bad : {"-1", "-0", "+3", "5x", "", "18446744073709551616"}) {
    set(bad);
    EXPECT_THROW((void)cli.get_uint("every"), ConfigError) << "input: " << bad;
  }
  set("18446744073709551615");  // UINT64_MAX parses
  EXPECT_EQ(cli.get_uint("every"), UINT64_MAX);
  set("0");
  EXPECT_EQ(cli.get_uint("every"), 0u);
}

TEST(Cli, UintRangeEnforcesInclusiveBounds) {
  // The sharded engine's --shard-size / --population go through
  // get_uint_range: a zero shard size or an overflowing population must die
  // with a typed ConfigError at the flag boundary, never reach the engine.
  common::CliParser cli("prog", "test");
  cli.add_flag("shard-size", "clients per shard", "256");
  cli.add_flag("population", "virtual clients", "0");
  {
    const char* argv[] = {"prog", "--shard-size", "0"};
    cli.parse(3, argv);
    EXPECT_THROW((void)cli.get_uint_range("shard-size", 1, 1'000'000),
                 ConfigError);
  }
  {
    const char* argv[] = {"prog", "--shard-size", "1000001"};
    cli.parse(3, argv);
    EXPECT_THROW((void)cli.get_uint_range("shard-size", 1, 1'000'000),
                 ConfigError);
  }
  {
    // Overflows int64 entirely → the strict get_uint parse throws first.
    const char* argv[] = {"prog", "--population", "99999999999999999999"};
    cli.parse(3, argv);
    EXPECT_THROW((void)cli.get_uint_range("population", 0, 100'000'000),
                 ConfigError);
  }
  {
    const char* argv[] = {"prog", "--shard-size", "1", "--population",
                          "100000000"};
    cli.parse(5, argv);
    EXPECT_EQ(cli.get_uint_range("shard-size", 1, 1'000'000), 1u);
    EXPECT_EQ(cli.get_uint_range("population", 0, 100'000'000), 100'000'000u);
  }
  {
    // Bounds are inclusive on both ends.
    const char* argv[] = {"prog", "--shard-size", "1000000"};
    cli.parse(3, argv);
    EXPECT_EQ(cli.get_uint_range("shard-size", 1, 1'000'000), 1'000'000u);
  }
}

TEST(Cli, ParseHostPortAcceptsValidSpecs) {
  const common::HostPort a = common::parse_host_port("localhost:7400");
  EXPECT_EQ(a.host, "localhost");
  EXPECT_EQ(a.port, 7400);
  const common::HostPort b = common::parse_host_port("10.0.0.2:1");
  EXPECT_EQ(b.host, "10.0.0.2");
  EXPECT_EQ(b.port, 1);
  const common::HostPort c = common::parse_host_port("example.org:65535");
  EXPECT_EQ(c.port, 65535);
}

TEST(Cli, ParseHostPortRejectsMalformedSpecs) {
  // The --connect retry loop reports these once, up front, instead of
  // burning its reconnect budget against a target that can never resolve.
  EXPECT_THROW((void)common::parse_host_port("no-colon"), ConfigError);
  EXPECT_THROW((void)common::parse_host_port(":7400"), ConfigError);
  EXPECT_THROW((void)common::parse_host_port("host:"), ConfigError);
  EXPECT_THROW((void)common::parse_host_port("host:7400x"), ConfigError);
  EXPECT_THROW((void)common::parse_host_port("host:0"), ConfigError);
  EXPECT_THROW((void)common::parse_host_port("host:65536"), ConfigError);
  EXPECT_THROW((void)common::parse_host_port("host:99999999999999999999"),
               ConfigError);
  EXPECT_THROW((void)common::parse_host_port(""), ConfigError);
}

TEST(Cli, RealParsingRejectsTrailingGarbageAndOverflow) {
  common::CliParser cli("prog", "test");
  cli.add_flag("rate", "r", "0");
  const auto set = [&](const char* v) {
    const std::string arg = std::string("--rate=") + v;
    const char* argv[] = {"prog", arg.c_str()};
    cli.parse(2, argv);
  };
  for (const char* bad : {"0.5abc", "1.2.3", "", "1e999"}) {
    set(bad);
    EXPECT_THROW((void)cli.get_real("rate"), ConfigError) << "input: " << bad;
  }
  set("-2.5e-3");
  EXPECT_DOUBLE_EQ(cli.get_real("rate"), -2.5e-3);
}

TEST(Cli, BoolAcceptsExplicitValues) {
  common::CliParser cli("prog", "test");
  cli.add_bool("flag", "f");
  const char* argv[] = {"prog", "--flag=false"};
  cli.parse(2, argv);
  EXPECT_FALSE(cli.get_bool("flag"));
}

TEST(Cli, DuplicateRegistrationThrows) {
  common::CliParser cli("prog", "test");
  cli.add_flag("x", "", "1");
  EXPECT_THROW(cli.add_flag("x", "", "2"), Error);
  EXPECT_THROW(cli.add_bool("x", ""), Error);
}

TEST(Logging, ParseLevels) {
  using common::LogLevel;
  EXPECT_EQ(common::parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(common::parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(common::parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(common::parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(common::parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(common::parse_log_level("loud"), ConfigError);
}

TEST(Logging, ThresholdRoundTrip) {
  const auto saved = common::log_threshold();
  common::set_log_threshold(common::LogLevel::kError);
  EXPECT_EQ(common::log_threshold(), common::LogLevel::kError);
  OASIS_LOG_INFO << "suppressed line (must not crash)";
  common::set_log_threshold(saved);
}

TEST(ErrorMacros, CheckThrowsWithLocation) {
  try {
    OASIS_CHECK_MSG(1 == 2, "custom message " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  common::Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + static_cast<double>(i);
  (void)sink;
  const double elapsed = sw.seconds();
  EXPECT_GT(elapsed, 0.0);
  // millis() and seconds() measure the same clock.
  EXPECT_GE(sw.millis(), elapsed * 1e3);
  sw.restart();
  EXPECT_LT(sw.seconds(), elapsed + 0.5);
}

// Serialization fuzz: corrupting a valid buffer at any prefix length must
// raise SerializationError (never crash or return garbage silently).
class SerializationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SerializationFuzz, TruncationAlwaysThrows) {
  common::Rng rng(GetParam());
  std::vector<tensor::Tensor> tensors;
  tensors.push_back(tensor::Tensor::randn({3, 4}, rng));
  tensors.push_back(tensor::Tensor::randn({7}, rng));
  const tensor::ByteBuffer buf = tensor::serialize_tensors(tensors);
  // Truncate at a pseudo-random interior point.
  const auto cut = 1 + static_cast<std::size_t>(rng.uniform_int(
                           0, static_cast<std::int64_t>(buf.size()) - 2));
  tensor::ByteBuffer truncated(buf.begin(),
                               buf.begin() + static_cast<std::ptrdiff_t>(cut));
  EXPECT_THROW(tensor::deserialize_tensors(truncated), Error);
}

INSTANTIATE_TEST_SUITE_P(Cuts, SerializationFuzz, ::testing::Range(1, 17));

TEST(Determinism, AttackExperimentIsAPureFunctionOfItsSeed) {
  data::SynthConfig cfg;
  cfg.num_classes = 6;
  cfg.height = cfg.width = 10;
  cfg.train_per_class = 4;
  cfg.test_per_class = 0;
  const auto victim = data::generate(cfg).train;
  cfg.seed ^= 0x11;
  const auto aux = data::generate(cfg).train;

  core::AttackExperimentConfig exp;
  exp.attack = core::AttackKind::kRtf;
  exp.batch_size = 4;
  exp.neurons = 50;
  exp.num_batches = 2;
  exp.transforms = {augment::TransformKind::kMinorRotation};
  exp.seed = 1234;
  const auto a = core::run_attack_experiment(victim, aux, exp);
  const auto b = core::run_attack_experiment(victim, aux, exp);
  ASSERT_EQ(a.per_image_psnr.size(), b.per_image_psnr.size());
  for (std::size_t i = 0; i < a.per_image_psnr.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.per_image_psnr[i], b.per_image_psnr[i]);
  }
  exp.seed = 4321;
  const auto c = core::run_attack_experiment(victim, aux, exp);
  bool any_different = false;
  for (std::size_t i = 0; i < a.per_image_psnr.size(); ++i) {
    if (a.per_image_psnr[i] != c.per_image_psnr[i]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace oasis
