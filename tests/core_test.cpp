// OASIS core tests: the defense preprocessor, the attack-experiment harness
// (integration: full FL round + attack + scoring), and the trainer.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/oasis.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "metrics/stats.h"
#include "nn/models.h"

namespace oasis::core {
namespace {

data::SynthDataset tiny_synth(index_t classes, index_t size,
                              index_t per_class, std::uint64_t seed) {
  data::SynthConfig cfg;
  cfg.num_classes = classes;
  cfg.height = cfg.width = size;
  cfg.train_per_class = per_class;
  cfg.test_per_class = 2;
  cfg.seed = seed;
  return data::generate(cfg);
}

TEST(OasisDefense, BuildsDPrime) {
  OasisDefense defense(OasisConfig{
      {augment::TransformKind::kMajorRotation,
       augment::TransformKind::kShear}});
  EXPECT_EQ(defense.name(), "oasis[MR+SH]");
  common::Rng rng(1);
  data::Batch batch{tensor::Tensor::rand({2, 3, 8, 8}, rng), {0, 1}};
  const data::Batch out = defense.process(batch, rng);
  // Integrated MR+SH: 3 rotations + 3 sheared rotations + 1 shear.
  EXPECT_EQ(out.size(), 2u * (1 + 7));
}

TEST(OasisDefense, MakePreprocessorFallsBackToIdentity) {
  auto id = make_preprocessor({});
  EXPECT_EQ(id->name(), "identity");
  auto mr = make_preprocessor({augment::TransformKind::kMajorRotation});
  EXPECT_EQ(mr->name(), "oasis[MR]");
}

TEST(Experiment, ParseAttackKinds) {
  EXPECT_EQ(parse_attack_kind("RTF"), AttackKind::kRtf);
  EXPECT_EQ(parse_attack_kind("cah"), AttackKind::kCah);
  EXPECT_EQ(parse_attack_kind("linear"), AttackKind::kLinear);
  EXPECT_THROW(parse_attack_kind("nope"), ConfigError);
  EXPECT_EQ(to_string(AttackKind::kCah), "CAH");
}

TEST(Experiment, RtfUndefendedVsDefendedGap) {
  // The paper's central claim as an integration test: mean best-match PSNR
  // without OASIS is enormous; with major rotation it collapses.
  auto victim = tiny_synth(10, 12, 4, 21).train;
  auto aux = tiny_synth(10, 12, 4, 22).train;

  AttackExperimentConfig cfg;
  cfg.attack = AttackKind::kRtf;
  cfg.batch_size = 4;
  cfg.neurons = 100;
  cfg.num_batches = 2;
  cfg.seed = 7;

  const auto undefended = run_attack_experiment(victim, aux, cfg);
  cfg.transforms = {augment::TransformKind::kMajorRotation};
  const auto defended = run_attack_experiment(victim, aux, cfg);

  ASSERT_EQ(undefended.per_image_psnr.size(), 8u);
  ASSERT_EQ(defended.per_image_psnr.size(), 8u);
  EXPECT_GT(undefended.mean_psnr(), 80.0);
  EXPECT_LT(defended.mean_psnr(), 40.0);
  EXPECT_GT(undefended.mean_psnr() - defended.mean_psnr(), 50.0);
}

TEST(Experiment, CahRunsAndDefenseHelps) {
  auto victim = tiny_synth(10, 12, 4, 23).train;
  auto aux = tiny_synth(10, 12, 4, 24).train;

  AttackExperimentConfig cfg;
  cfg.attack = AttackKind::kCah;
  cfg.batch_size = 4;
  cfg.neurons = 120;
  cfg.num_batches = 2;
  cfg.seed = 8;

  const auto undefended = run_attack_experiment(victim, aux, cfg);
  cfg.transforms = {augment::TransformKind::kMajorRotation,
                    augment::TransformKind::kShear};
  const auto defended = run_attack_experiment(victim, aux, cfg);
  EXPECT_GT(undefended.mean_psnr(), 70.0);
  EXPECT_LT(defended.mean_psnr(), undefended.mean_psnr() - 20.0);
}

TEST(Experiment, LinearModelExperiment) {
  auto victim = tiny_synth(10, 12, 4, 25).train;
  auto aux = tiny_synth(10, 12, 4, 26).train;

  AttackExperimentConfig cfg;
  cfg.attack = AttackKind::kLinear;
  cfg.batch_size = 4;
  cfg.num_batches = 2;
  cfg.classes = 10;
  cfg.seed = 9;

  const auto undefended = run_attack_experiment(victim, aux, cfg);
  EXPECT_GT(undefended.mean_psnr(), 100.0);
  cfg.transforms = {augment::TransformKind::kShear};
  const auto defended = run_attack_experiment(victim, aux, cfg);
  EXPECT_LT(defended.mean_psnr(), 45.0);
}

TEST(Experiment, CollectVisualsReturnsPairedImages) {
  auto victim = tiny_synth(10, 12, 3, 27).train;
  auto aux = tiny_synth(10, 12, 3, 28).train;
  AttackExperimentConfig cfg;
  cfg.attack = AttackKind::kRtf;
  cfg.batch_size = 3;
  cfg.neurons = 60;
  cfg.num_batches = 1;
  cfg.collect_visuals = true;
  const auto result = run_attack_experiment(victim, aux, cfg);
  ASSERT_EQ(result.visual_originals.size(), 3u);
  ASSERT_EQ(result.visual_reconstructions.size(), 3u);
  for (const auto& img : result.visual_reconstructions) {
    EXPECT_EQ(img.shape(), victim.image_shape());
  }
}

TEST(Trainer, LearnsSeparableSyntheticData) {
  auto ds = tiny_synth(4, 12, 10, 29);
  common::Rng rng(30);
  auto model = nn::make_mini_convnet({3, 12, 12}, 4, rng, 6);
  TrainerConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 8;
  cfg.adam.lr = 2e-3;
  const TrainResult result = train_classifier(*model, ds.train, ds.test, cfg);
  EXPECT_EQ(result.epoch_loss.size(), 8u);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
  EXPECT_GT(result.final_test_accuracy, 0.5);  // well above 0.25 chance
}

TEST(Trainer, OasisAugmentationDoesNotBreakTraining) {
  auto ds = tiny_synth(4, 12, 8, 31);
  common::Rng rng(32);
  auto model = nn::make_mini_convnet({3, 12, 12}, 4, rng, 6);
  TrainerConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 8;
  cfg.adam.lr = 2e-3;
  cfg.transforms = {augment::TransformKind::kMajorRotation};
  const TrainResult result = train_classifier(*model, ds.train, ds.test, cfg);
  EXPECT_GT(result.final_test_accuracy, 0.5);
}

TEST(Trainer, EpochCallbackFires) {
  auto ds = tiny_synth(3, 12, 4, 33);
  common::Rng rng(34);
  auto model = nn::make_mlp({3, 12, 12}, {16}, 3, rng);
  TrainerConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 6;
  cfg.eval_every = 2;
  index_t calls = 0, evals = 0;
  cfg.on_epoch = [&](index_t, real, real acc) {
    ++calls;
    if (acc >= 0.0) ++evals;
  };
  train_classifier(*model, ds.train, ds.test, cfg);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(evals, 2u);  // epochs 2 and 3
}

}  // namespace
}  // namespace oasis::core
