// Kill-point crash harness (ISSUE tentpole proof): a child process runs the
// federation with periodic checkpoints and SIGKILLs itself at a randomized
// byte offset inside a randomized checkpoint write; a second child resumes
// from whatever the crash left on disk and finishes the schedule. The
// resumed run's final model bytes and obs dump must be byte-identical to an
// uninterrupted reference run — across 100 seeds per thread count, at 1 and
// 8 threads.
//
// Fork discipline: the parent configures the runtime to serial mode (no pool
// threads exist) before every fork, and children communicate only through
// files + exit status. Children never run gtest assertions; they report
// failure through exit codes the parent translates.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/io.h"
#include "ckpt/manager.h"
#include "common/error.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/population.h"
#include "fl/preprocessor.h"
#include "fl/server.h"
#include "fl/shard.h"
#include "fl/simulation.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace oasis::ckpt {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kFederationSeed = 4096;
constexpr std::uint64_t kRounds = 6;
constexpr std::uint64_t kSaveEvery = 2;  // checkpoints land at rounds 2, 4, 6

// Child exit codes (parent-side diagnostics).
constexpr int kOkExit = 0;
constexpr int kResumeFailedExit = 3;
constexpr int kUncaughtExit = 4;

fl::Simulation make_federation() {
  data::SynthConfig cfg;
  cfg.num_classes = 4;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 4;
  cfg.test_per_class = 0;

  const fl::ModelFactory factory = [] {
    common::Rng rng(kFederationSeed ^ 0x5EED);
    return nn::make_mlp({3, 8, 8}, {8}, 4, rng);
  };
  auto server =
      std::make_unique<fl::Server>(factory(), /*learning_rate=*/0.05);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (std::uint64_t id = 0; id < 3; ++id) {
    cfg.seed = 100 + id;
    clients.push_back(std::make_unique<fl::Client>(
        id, data::generate(cfg).train, factory, /*batch_size=*/3,
        std::make_shared<fl::IdentityPreprocessor>(),
        common::Rng(kFederationSeed ^ (0xC11E + id))));
  }
  return fl::Simulation(
      std::move(server), std::move(clients),
      fl::SimulationConfig{/*clients_per_round=*/2, kFederationSeed});
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Obs dump with timings off and the contracted "ckpt.restore" exclusion
/// (restore bookkeeping: restore_total, skipped_invalid) filtered out.
std::string comparable_obs_dump() {
  std::stringstream filtered;
  std::stringstream src(
      obs::to_json(obs::Registry::global(), {/*include_timings=*/false}));
  std::string line;
  while (std::getline(src, line)) {
    if (line.find("ckpt.restore") == std::string::npos) {
      filtered << line << '\n';
    }
  }
  return filtered.str();
}

struct ChildSpec {
  index_t threads = 1;
  std::string ckpt_dir;
  std::string model_out;  // final global-model bytes
  std::string obs_out;    // filtered obs dump
  bool arm_kill = false;
  std::int64_t kill_save = 0;    // which atomic write (0-based, from now)
  std::int64_t kill_offset = 0;  // bytes of the tmp file written before kill
};

/// The workload both children run: resume if possible, then drive the
/// round/checkpoint schedule to completion and record the final state.
[[noreturn]] void run_child(const ChildSpec& spec) {
  try {
    runtime::set_num_threads(spec.threads);
    obs::Registry::global().reset();
    fl::Simulation sim = make_federation();
    CheckpointManager manager(spec.ckpt_dir, /*keep=*/3);
    try {
      (void)sim.resume_from(manager);
    } catch (const CheckpointError& e) {
      if (e.reason() != CheckpointError::Reason::kNoValidGeneration) {
        _exit(kResumeFailedExit);
      }
      // Empty/unusable directory → fresh start, by contract.
    }
    if (spec.arm_kill) arm_kill_point(spec.kill_save, spec.kill_offset);
    while (sim.server().round() < kRounds) {
      sim.run_round();
      if (sim.server().round() % kSaveEvery == 0) {
        (void)sim.save_checkpoint(manager);
      }
    }
    write_bytes(spec.model_out,
                nn::serialize_state(sim.server().global_model()));
    write_text(spec.obs_out, comparable_obs_dump());
    _exit(kOkExit);
  } catch (...) {
    _exit(kUncaughtExit);
  }
}

struct ChildResult {
  bool signaled = false;
  int signal = 0;
  int exit_code = -1;
};

ChildResult spawn_child(const ChildSpec& spec,
                        void (*runner)(const ChildSpec&) = run_child) {
  // No pool threads may exist across fork(): serial mode tears them down.
  runtime::set_num_threads(1);
  const pid_t pid = fork();
  if (pid == 0) runner(spec);  // never returns
  ChildResult result;
  int status = 0;
  const pid_t waited = waitpid(pid, &status, 0);
  if (waited != pid) return result;  // exit_code -1 → parent-side failure
  if (WIFSIGNALED(status)) {
    result.signaled = true;
    result.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

class Scenario {
 public:
  explicit Scenario(const std::string& tag)
      : root_(fs::path(::testing::TempDir()) / ("oasis_crash_" + tag)) {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~Scenario() { fs::remove_all(root_); }

  [[nodiscard]] std::string path(const std::string& leaf) const {
    return (root_ / leaf).string();
  }

 private:
  fs::path root_;
};

/// Reference (uninterrupted) run at `threads`; returns the final model bytes,
/// the filtered obs dump, and the on-disk snapshot size used to scale kill
/// offsets.
struct Reference {
  std::vector<std::uint8_t> model;
  std::string obs;
  std::int64_t snapshot_size = 0;
};

Reference run_reference(const Scenario& scenario, index_t threads) {
  ChildSpec spec;
  spec.threads = threads;
  spec.ckpt_dir = scenario.path("ref_ckpt");
  spec.model_out = scenario.path("ref_model");
  spec.obs_out = scenario.path("ref_obs");
  const ChildResult r = spawn_child(spec);
  EXPECT_FALSE(r.signaled) << "reference child died on signal " << r.signal;
  EXPECT_EQ(r.exit_code, kOkExit);
  Reference ref;
  ref.model = read_file(spec.model_out);
  ref.obs = read_text(spec.obs_out);
  CheckpointManager manager(spec.ckpt_dir, 3);
  const auto gens = manager.generations();
  EXPECT_FALSE(gens.empty());
  if (!gens.empty()) {
    ref.snapshot_size = static_cast<std::int64_t>(
        fs::file_size(manager.path_for(gens.back())));
  }
  return ref;
}

/// One seed of the sweep: crash a run at a seed-derived (save, offset) kill
/// point, resume it, and demand bit-identity with the reference.
void run_crash_seed(const Scenario& scenario, const Reference& ref,
                    index_t threads, std::uint64_t seed) {
  common::Rng rng(seed);
  const auto kill_save = rng.uniform_int(0, kRounds / kSaveEvery - 1);
  // +16 beyond the clamp point gives the post-payload kill sites (pre-fsync,
  // post-rename) extra mass; io.cpp clamps to size + 1.
  const auto kill_offset = rng.uniform_int(0, ref.snapshot_size + 16);

  const std::string tag = "s" + std::to_string(seed);
  ChildSpec crash;
  crash.threads = threads;
  crash.ckpt_dir = scenario.path(tag + "_ckpt");
  crash.model_out = scenario.path(tag + "_crash_model");
  crash.obs_out = scenario.path(tag + "_crash_obs");
  crash.arm_kill = true;
  crash.kill_save = kill_save;
  crash.kill_offset = kill_offset;
  const ChildResult crashed = spawn_child(crash);
  ASSERT_TRUE(crashed.signaled)
      << "seed " << seed << ": crash child exited " << crashed.exit_code
      << " instead of dying at save " << kill_save << " offset "
      << kill_offset;
  ASSERT_EQ(crashed.signal, SIGKILL) << "seed " << seed;

  ChildSpec resume;
  resume.threads = threads;
  resume.ckpt_dir = crash.ckpt_dir;  // same directory: whatever survived
  resume.model_out = scenario.path(tag + "_resume_model");
  resume.obs_out = scenario.path(tag + "_resume_obs");
  const ChildResult resumed = spawn_child(resume);
  ASSERT_FALSE(resumed.signaled)
      << "seed " << seed << ": resume child died on signal " << resumed.signal;
  ASSERT_EQ(resumed.exit_code, kOkExit)
      << "seed " << seed << " (save " << kill_save << ", offset "
      << kill_offset << ")";

  EXPECT_EQ(read_file(resume.model_out), ref.model)
      << "seed " << seed << ": final model bytes diverged after crash at save "
      << kill_save << " offset " << kill_offset;
  EXPECT_EQ(read_text(resume.obs_out), ref.obs)
      << "seed " << seed << ": obs dump diverged after crash at save "
      << kill_save << " offset " << kill_offset;
}

void run_sweep(const std::string& tag, index_t threads, std::uint64_t lo,
               std::uint64_t hi) {
  Scenario scenario(tag);
  const Reference ref = run_reference(scenario, threads);
  ASSERT_GT(ref.snapshot_size, 0);
  for (std::uint64_t seed = lo; seed < hi; ++seed) {
    run_crash_seed(scenario, ref, threads, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---- Sharded engine: SIGKILL mid-shard, resume from a shard boundary -------
//
// The sharded analogue of the sweep above, with a different kill site: the
// child checkpoints at EVERY shard boundary and dies by SIGKILL after a
// seed-derived number of client folds — i.e. in the middle of a shard, with
// the accumulator holding a partial sum that never reaches disk. Resume must
// land on the last shard-boundary snapshot, re-derive the cohort, replay the
// lost shard, and finish bit-identical to the uninterrupted reference.

constexpr std::uint64_t kShardRounds = 4;
constexpr index_t kShardCohort = 6;  // shard_size 2 → 3 boundaries per round

fl::ShardedSimulation make_sharded_federation() {
  fl::VirtualPopulationConfig pop;
  pop.num_clients = 16;
  pop.seed = kFederationSeed ^ 0x5AD;
  pop.num_classes = 4;
  pop.height = pop.width = 8;
  pop.examples_per_client = 6;
  pop.batch_size = 3;
  pop.factory = [] {
    common::Rng rng(kFederationSeed ^ 0x5EED);
    return nn::make_mlp({3, 8, 8}, {8}, 4, rng);
  };
  fl::ShardedConfig cfg;
  cfg.cohort_size = kShardCohort;
  cfg.shard_size = 2;
  cfg.seed = kFederationSeed;
  auto server =
      std::make_unique<fl::Server>(pop.factory(), /*learning_rate=*/0.05);
  return fl::ShardedSimulation(std::move(server), fl::VirtualPopulation(pop),
                               std::move(cfg));
}

/// Sharded-engine child: resume if possible, checkpoint at every shard
/// boundary, optionally SIGKILL itself after `kill_offset` client folds.
[[noreturn]] void run_shard_child(const ChildSpec& spec) {
  try {
    runtime::set_num_threads(spec.threads);
    obs::Registry::global().reset();
    fl::ShardedSimulation sim = make_sharded_federation();
    CheckpointManager manager(spec.ckpt_dir, /*keep=*/3);
    try {
      (void)sim.resume_from(manager);
    } catch (const CheckpointError& e) {
      if (e.reason() != CheckpointError::Reason::kNoValidGeneration) {
        _exit(kResumeFailedExit);
      }
    }
    sim.set_shard_hook([&sim, &manager](const fl::ShardProgress&) {
      (void)sim.save_checkpoint(manager);
    });
    if (spec.arm_kill) {
      // kill_offset doubles as the fold countdown: the SIGKILL lands inside
      // a shard, between two serial folds, never at a tidy boundary.
      sim.set_client_hook(
          [remaining = spec.kill_offset](std::uint64_t, index_t) mutable {
            if (--remaining <= 0) ::kill(::getpid(), SIGKILL);
          });
    }
    while (sim.server().round() < kShardRounds) {
      sim.run_round();
    }
    write_bytes(spec.model_out,
                nn::serialize_state(sim.server().global_model()));
    write_text(spec.obs_out, comparable_obs_dump());
    _exit(kOkExit);
  } catch (...) {
    _exit(kUncaughtExit);
  }
}

Reference run_shard_reference(const Scenario& scenario, index_t threads) {
  ChildSpec spec;
  spec.threads = threads;
  spec.ckpt_dir = scenario.path("ref_ckpt");
  spec.model_out = scenario.path("ref_model");
  spec.obs_out = scenario.path("ref_obs");
  const ChildResult r = spawn_child(spec, run_shard_child);
  EXPECT_FALSE(r.signaled) << "reference child died on signal " << r.signal;
  EXPECT_EQ(r.exit_code, kOkExit);
  Reference ref;
  ref.model = read_file(spec.model_out);
  ref.obs = read_text(spec.obs_out);
  return ref;
}

void run_shard_crash_seed(const Scenario& scenario, const Reference& ref,
                          index_t threads, std::uint64_t seed) {
  common::Rng rng(seed ^ 0x5A4D);
  // 4 rounds × 6 folds = 24 total; stay below so the crash child always dies.
  const auto kill_after =
      rng.uniform_int(1, kShardRounds * kShardCohort - 2);

  const std::string tag = "s" + std::to_string(seed);
  ChildSpec crash;
  crash.threads = threads;
  crash.ckpt_dir = scenario.path(tag + "_ckpt");
  crash.model_out = scenario.path(tag + "_crash_model");
  crash.obs_out = scenario.path(tag + "_crash_obs");
  crash.arm_kill = true;
  crash.kill_offset = kill_after;
  const ChildResult crashed = spawn_child(crash, run_shard_child);
  ASSERT_TRUE(crashed.signaled)
      << "seed " << seed << ": crash child exited " << crashed.exit_code
      << " instead of dying after " << kill_after << " folds";
  ASSERT_EQ(crashed.signal, SIGKILL) << "seed " << seed;

  ChildSpec resume;
  resume.threads = threads;
  resume.ckpt_dir = crash.ckpt_dir;  // same directory: whatever survived
  resume.model_out = scenario.path(tag + "_resume_model");
  resume.obs_out = scenario.path(tag + "_resume_obs");
  const ChildResult resumed = spawn_child(resume, run_shard_child);
  ASSERT_FALSE(resumed.signaled)
      << "seed " << seed << ": resume child died on signal " << resumed.signal;
  ASSERT_EQ(resumed.exit_code, kOkExit)
      << "seed " << seed << " (killed after " << kill_after << " folds)";

  EXPECT_EQ(read_file(resume.model_out), ref.model)
      << "seed " << seed
      << ": final model bytes diverged after mid-shard SIGKILL at fold "
      << kill_after;
  EXPECT_EQ(read_text(resume.obs_out), ref.obs)
      << "seed " << seed << ": obs dump diverged after mid-shard SIGKILL";
}

void run_shard_sweep(const std::string& tag, index_t threads, std::uint64_t lo,
                     std::uint64_t hi) {
  Scenario scenario(tag);
  const Reference ref = run_shard_reference(scenario, threads);
  ASSERT_FALSE(ref.model.empty());
  for (std::uint64_t seed = lo; seed < hi; ++seed) {
    run_shard_crash_seed(scenario, ref, threads, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// 100 seeds per thread count, split into 25-seed shards to stay inside the
// per-test CI timeout. Seed ranges are disjoint so the sweep covers 100
// DISTINCT kill points at each thread count.

TEST(CrashResume, Serial_Seeds0To24) { run_sweep("t1a", 1, 0, 25); }
TEST(CrashResume, Serial_Seeds25To49) { run_sweep("t1b", 1, 25, 50); }
TEST(CrashResume, Serial_Seeds50To74) { run_sweep("t1c", 1, 50, 75); }
TEST(CrashResume, Serial_Seeds75To99) { run_sweep("t1d", 1, 75, 100); }

TEST(CrashResume, Threads8_Seeds0To24) { run_sweep("t8a", 8, 0, 25); }
TEST(CrashResume, Threads8_Seeds25To49) { run_sweep("t8b", 8, 25, 50); }
TEST(CrashResume, Threads8_Seeds50To74) { run_sweep("t8c", 8, 50, 75); }
TEST(CrashResume, Threads8_Seeds75To99) { run_sweep("t8d", 8, 75, 100); }

// Mid-shard SIGKILL sweep for the sharded engine: 50 distinct kill points
// serial, 25 at 8 threads, in 25-seed shards for the per-test CI timeout.

TEST(ShardCrashResume, Serial_Seeds0To24) { run_shard_sweep("sh1a", 1, 0, 25); }
TEST(ShardCrashResume, Serial_Seeds25To49) {
  run_shard_sweep("sh1b", 1, 25, 50);
}
TEST(ShardCrashResume, Threads8_Seeds0To24) {
  run_shard_sweep("sh8a", 8, 0, 25);
}

// The sharded references must agree across thread counts too.
TEST(ShardCrashResume, ReferencesAgreeAcrossThreadCounts) {
  Scenario s1("shref1");
  Scenario s8("shref8");
  const Reference a = run_shard_reference(s1, 1);
  const Reference b = run_shard_reference(s8, 8);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.obs, b.obs);
}

// The serial and 8-thread references themselves must agree: checkpointing
// must not break the runtime's thread-count determinism contract.
TEST(CrashResume, ReferencesAgreeAcrossThreadCounts) {
  Scenario s1("ref1");
  Scenario s8("ref8");
  const Reference a = run_reference(s1, 1);
  const Reference b = run_reference(s8, 8);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.obs, b.obs);
  EXPECT_EQ(a.snapshot_size, b.snapshot_size);
}

}  // namespace
}  // namespace oasis::ckpt
