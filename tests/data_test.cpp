// Data substrate tests: image I/O, dataset invariants, synthetic generator
// determinism and statistics, batching.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "data/dataset.h"
#include "data/image.h"
#include "data/shapes.h"
#include "data/synthetic.h"
#include "tensor/ops.h"

namespace oasis::data {
namespace {

TEST(Image, CheckImageRejectsBadShapes) {
  EXPECT_NO_THROW(check_image(tensor::Tensor({3, 4, 4})));
  EXPECT_NO_THROW(check_image(tensor::Tensor({1, 2, 2})));
  EXPECT_THROW(check_image(tensor::Tensor({2, 4, 4})), ShapeError);
  EXPECT_THROW(check_image(tensor::Tensor({3, 4})), ShapeError);
}

TEST(Image, Clamp01) {
  tensor::Tensor img({1, 1, 3}, {-0.5, 0.5, 1.5});
  tensor::Tensor c = clamp01(img);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
}

TEST(Image, PnmRoundTrip) {
  common::Rng rng(1);
  tensor::Tensor img = tensor::Tensor::rand({3, 6, 5}, rng);
  const std::string path = "/tmp/oasis_test_rt.ppm";
  write_pnm(img, path);
  tensor::Tensor back = read_pnm(path);
  ASSERT_EQ(back.shape(), img.shape());
  // 8-bit quantization: error bounded by 1/255 per pixel (half a step after
  // rounding).
  EXPECT_LT(tensor::max_abs_diff(back, img), 0.5 / 255.0 + 1e-9);
  std::remove(path.c_str());
}

TEST(Image, PnmGrayscale) {
  tensor::Tensor img({1, 2, 2}, {0.0, 0.25, 0.5, 1.0});
  const std::string path = "/tmp/oasis_test_gray.pgm";
  write_pnm(img, path);
  tensor::Tensor back = read_pnm(path);
  EXPECT_EQ(back.dim(0), 1u);
  EXPECT_NEAR(back[3], 1.0, 1e-9);
  std::remove(path.c_str());
}

TEST(Image, ReadMissingFileThrows) {
  EXPECT_THROW(read_pnm("/tmp/definitely_missing_oasis.ppm"), Error);
}

TEST(Image, TileImagesGeometry) {
  std::vector<tensor::Tensor> imgs(5, tensor::Tensor({3, 4, 4}));
  tensor::Tensor canvas = tile_images(imgs, 3);
  // 2 rows × 3 cols with 2px gutters: h = 2*4+3*2 = 14, w = 3*4+4*2 = 20.
  EXPECT_EQ(canvas.shape(), (tensor::Shape{3, 14, 20}));
}

TEST(Dataset, PushBackValidates) {
  InMemoryDataset ds(3, {3, 4, 4});
  EXPECT_THROW(ds.push_back({tensor::Tensor({3, 4, 4}), 3}), Error);
  EXPECT_THROW(ds.push_back({tensor::Tensor({3, 2, 2}), 0}), ShapeError);
  ds.push_back({tensor::Tensor({3, 4, 4}), 2});
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.image_dim(), 48u);
}

TEST(Dataset, SubsetAndShard) {
  InMemoryDataset ds(2, {1, 1, 1});
  for (index_t i = 0; i < 10; ++i) {
    ds.push_back({tensor::Tensor({1, 1, 1}, {static_cast<real>(i)}), i % 2});
  }
  const std::vector<index_t> idx{1, 3, 5};
  auto sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.at(2).image[0], 5.0);

  auto shards = ds.shard(3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].size(), 4u);
  EXPECT_EQ(shards[1].size(), 3u);
  // Round-robin: shard 1 holds examples 1, 4, 7.
  EXPECT_DOUBLE_EQ(shards[1].at(1).image[0], 4.0);
}

TEST(Dataset, GatherStacksImagesAndLabels) {
  InMemoryDataset ds(4, {1, 2, 2});
  for (index_t i = 0; i < 4; ++i) {
    ds.push_back({tensor::Tensor::full({1, 2, 2}, static_cast<real>(i)), i});
  }
  const std::vector<index_t> idx{2, 0};
  Batch b = gather(ds, idx);
  EXPECT_EQ(b.images.shape(), (tensor::Shape{2, 1, 2, 2}));
  EXPECT_EQ(b.labels, (std::vector<index_t>{2, 0}));
  EXPECT_DOUBLE_EQ(b.images.at4(0, 0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(b.images.at4(1, 0, 1, 1), 0.0);
}

TEST(Dataset, StackUnstackRoundTrip) {
  common::Rng rng(2);
  std::vector<tensor::Tensor> imgs;
  for (int i = 0; i < 3; ++i)
    imgs.push_back(tensor::Tensor::randn({3, 4, 4}, rng));
  tensor::Tensor stacked = stack_images(imgs);
  auto back = unstack_images(stacked);
  ASSERT_EQ(back.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(back[i] == imgs[i]);
}

TEST(Dataset, EpochBatchesCoverDatasetOnce) {
  common::Rng rng(3);
  auto batches = epoch_batches(20, 6, rng, /*drop_last=*/false);
  ASSERT_EQ(batches.size(), 4u);  // 6+6+6+2
  std::set<index_t> seen;
  for (const auto& b : batches)
    for (const auto i : b) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), 20u);

  auto dropped = epoch_batches(20, 6, rng, /*drop_last=*/true);
  EXPECT_EQ(dropped.size(), 3u);
}

TEST(Shapes, GradientFillSpansColors) {
  tensor::Tensor canvas({3, 8, 8});
  fill_gradient(canvas, {0, 0, 0}, {1, 1, 1}, 0.0);
  // Horizontal gradient: left column darker than right.
  EXPECT_LT(canvas.at3(0, 4, 0), canvas.at3(0, 4, 7));
}

TEST(Shapes, DrawShapeChangesCanvasInsideOnly) {
  tensor::Tensor canvas({3, 16, 16});
  draw_shape(canvas, ShapeKind::kCircle, {1, 0, 0}, 0.5, 0.5, 0.2, 0.0);
  // Center is foreground red; far corner untouched (zero).
  EXPECT_GT(canvas.at3(0, 8, 8), 0.9);
  EXPECT_DOUBLE_EQ(canvas.at3(0, 0, 0), 0.0);
}

TEST(Shapes, NoiseHasRequestedScale) {
  common::Rng rng(4);
  tensor::Tensor canvas({3, 32, 32});
  add_noise(canvas, 0.1, rng);
  EXPECT_NEAR(canvas.mean(), 0.0, 0.01);
  real var = 0.0;
  for (const auto v : canvas.data()) var += v * v;
  var /= static_cast<real>(canvas.size());
  EXPECT_NEAR(std::sqrt(var), 0.1, 0.02);
}

TEST(Synthetic, DeterministicInSeed) {
  SynthConfig cfg;
  cfg.num_classes = 3;
  cfg.train_per_class = 2;
  cfg.test_per_class = 1;
  cfg.height = cfg.width = 16;
  auto a = generate(cfg);
  auto b = generate(cfg);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (index_t i = 0; i < a.train.size(); ++i) {
    EXPECT_TRUE(a.train.at(i).image == b.train.at(i).image);
    EXPECT_EQ(a.train.at(i).label, b.train.at(i).label);
  }
  cfg.seed += 1;
  auto c = generate(cfg);
  EXPECT_FALSE(a.train.at(0).image == c.train.at(0).image);
}

TEST(Synthetic, SizesAndLabels) {
  SynthConfig cfg;
  cfg.num_classes = 5;
  cfg.train_per_class = 4;
  cfg.test_per_class = 2;
  cfg.height = cfg.width = 12;
  auto ds = generate(cfg);
  EXPECT_EQ(ds.train.size(), 20u);
  EXPECT_EQ(ds.test.size(), 10u);
  std::vector<index_t> counts(5, 0);
  for (index_t i = 0; i < ds.train.size(); ++i)
    ++counts[ds.train.at(i).label];
  for (const auto c : counts) EXPECT_EQ(c, 4u);
}

TEST(Synthetic, PixelsInUnitRange) {
  auto cfg = synth_cifar100_config();
  cfg.num_classes = 4;
  cfg.train_per_class = 3;
  cfg.test_per_class = 1;
  auto ds = generate(cfg);
  for (index_t i = 0; i < ds.train.size(); ++i) {
    EXPECT_GE(ds.train.at(i).image.min(), 0.0);
    EXPECT_LE(ds.train.at(i).image.max(), 1.0);
  }
}

TEST(Synthetic, BrightnessVariesAcrossImages) {
  // RTF bins by mean brightness; the generator must not produce images with
  // (near-)identical means or the binning degenerates.
  auto cfg = synth_imagenet_config();
  cfg.train_per_class = 8;
  cfg.test_per_class = 1;
  auto ds = generate(cfg);
  std::vector<real> means;
  for (index_t i = 0; i < ds.train.size(); ++i)
    means.push_back(ds.train.at(i).image.mean());
  real lo = means[0], hi = means[0];
  for (const auto m : means) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_GT(hi - lo, 0.1);  // a wide brightness spread
}

TEST(Synthetic, ClassSignaturesDiffer) {
  auto cfg = synth_imagenet_config();
  for (index_t a = 0; a < 10; ++a) {
    for (index_t b = a + 1; b < 10; ++b) {
      const auto sa = class_signature(cfg, a);
      const auto sb = class_signature(cfg, b);
      const bool same_shape = sa.shape == sb.shape;
      const bool same_color =
          std::abs(sa.foreground[0] - sb.foreground[0]) < 1e-6 &&
          std::abs(sa.foreground[1] - sb.foreground[1]) < 1e-6 &&
          std::abs(sa.foreground[2] - sb.foreground[2]) < 1e-6;
      EXPECT_FALSE(same_shape && same_color) << a << " vs " << b;
    }
  }
}

TEST(Synthetic, HsvToRgbPrimaries) {
  const Color red = hsv_to_rgb(0.0, 1.0, 1.0);
  EXPECT_NEAR(red[0], 1.0, 1e-9);
  EXPECT_NEAR(red[1], 0.0, 1e-9);
  const Color green = hsv_to_rgb(1.0 / 3.0, 1.0, 1.0);
  EXPECT_NEAR(green[1], 1.0, 1e-9);
  const Color gray = hsv_to_rgb(0.7, 0.0, 0.5);
  EXPECT_NEAR(gray[0], 0.5, 1e-9);
  EXPECT_NEAR(gray[2], 0.5, 1e-9);
}

class ShapeKindSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShapeKindSweep, EveryShapeKindDrawsSomething) {
  tensor::Tensor canvas({3, 24, 24});
  draw_shape(canvas, static_cast<ShapeKind>(GetParam()), {0.9, 0.8, 0.1},
             0.5, 0.5, 0.3, 0.4);
  EXPECT_GT(canvas.sum(), 0.5) << "shape kind " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ShapeKindSweep,
                         ::testing::Range(0, static_cast<int>(kShapeKindCount)));

}  // namespace
}  // namespace oasis::data
