// Defense & robustness suite (ctest label "defense").
//
// Pins the PR-10 contracts:
//   * DefenseStack stages (clip / noise / secagg mask) are pure functions of
//     (stack seed, round, client, stage index) — defended federations are
//     byte-identical at 1 vs 8 threads, with identical fl.defense.* counters;
//   * parse_defense_stack round-trips specs and rejects malformed ones;
//   * pairwise masks cancel in the equal-weight full-cohort sum;
//   * the client-side audit gate (attack::make_model_auditor) refuses RTF and
//     half-negative-trap CAH implants, never refuses an honest init across
//     120 seeds, and a refusing client is excluded gracefully — the round
//     proceeds with the remaining cohort — in the materialized engine, the
//     sharded engine, and the socket path;
//   * Byzantine chaos: with sign-flip attackers at f/n ∈ {0.1, 0.3},
//     coordinate-median and trimmed-mean keep the final model within ε of
//     the clean run while plain FedAvg is dragged far away (ci.sh's defense
//     stage re-runs the ByzantineChaos suite under TSan).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/audit.h"
#include "attack/cah.h"
#include "attack/rtf.h"
#include "data/synthetic.h"
#include "fl/defense.h"
#include "fl/fault.h"
#include "fl/population.h"
#include "fl/server.h"
#include "fl/shard.h"
#include "fl/simulation.h"
#include "net/client.h"
#include "net/server.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "tensor/serialize.h"

namespace oasis::fl {
namespace {

constexpr nn::ImageSpec kSpec{3, 10, 10};
constexpr index_t kNeurons = 40;
constexpr index_t kClasses = 6;

data::InMemoryDataset tiny_dataset(index_t per_class, std::uint64_t seed) {
  data::SynthConfig cfg;
  cfg.num_classes = kClasses;
  cfg.height = cfg.width = 10;
  cfg.train_per_class = per_class;
  cfg.test_per_class = 0;
  cfg.seed = seed;
  return data::generate(cfg).train;
}

ModelFactory host_factory(std::uint64_t seed) {
  return [seed] {
    common::Rng rng(seed);
    return nn::make_attack_host(kSpec, kNeurons, kClasses, rng);
  };
}

std::unique_ptr<Simulation> make_federation(index_t n_clients,
                                            SimulationConfig config,
                                            ModelAuditor auditor = {},
                                            index_t audited_clients = 0) {
  const auto data = tiny_dataset(/*per_class=*/8, /*seed=*/33);
  const auto shards = data.shard(n_clients);
  std::vector<std::unique_ptr<Client>> clients;
  for (index_t i = 0; i < n_clients; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, shards[i], host_factory(40), /*batch_size=*/3,
        std::make_shared<IdentityPreprocessor>(), common::Rng(500 + i)));
    if (auditor && i < audited_clients) clients[i]->set_model_auditor(auditor);
  }
  auto server = std::make_unique<Server>(host_factory(40)(), 0.1);
  return std::make_unique<Simulation>(std::move(server), std::move(clients),
                                      config);
}

std::vector<tensor::Tensor> toy_gradients(std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<tensor::Tensor> grads;
  grads.push_back(tensor::Tensor(tensor::Shape{4, 3}));
  grads.push_back(tensor::Tensor(tensor::Shape{7}));
  for (auto& t : grads) {
    for (auto& v : t.data()) v = rng.normal(0.0, 1.0);
  }
  return grads;
}

real global_norm(const std::vector<tensor::Tensor>& grads) {
  real sq = 0.0;
  for (const auto& t : grads) {
    for (const auto v : t.data()) sq += v * v;
  }
  return std::sqrt(sq);
}

std::uint64_t counter_value(const std::string& name) {
  for (const auto& [n, v] : obs::Registry::global().counters()) {
    if (n == name) return v;
  }
  return 0;
}

// --- Defense stages ----------------------------------------------------------

TEST(Defense, ClipBoundsGlobalNormAndPreservesDirection) {
  auto grads = toy_gradients(1);
  auto original = grads;
  const real norm = global_norm(grads);
  ASSERT_GT(norm, 1.0);

  const ClipDefense clip(norm / 2);
  common::Rng rng(0);
  clip.apply(grads, rng, DefenseContext{});
  EXPECT_NEAR(global_norm(grads), norm / 2, 1e-9);
  // Direction preserved: clipped = scale * original, elementwise.
  const real scale = (norm / 2) / norm;
  for (std::size_t t = 0; t < grads.size(); ++t) {
    for (index_t i = 0; i < grads[t].size(); ++i) {
      EXPECT_DOUBLE_EQ(grads[t][i], original[t][i] * scale);
    }
  }

  // Under the bound: bit-exact no-op.
  auto small = toy_gradients(2);
  auto small_copy = small;
  const ClipDefense loose(global_norm(small) * 10);
  loose.apply(small, rng, DefenseContext{});
  for (std::size_t t = 0; t < small.size(); ++t) {
    for (index_t i = 0; i < small[t].size(); ++i) {
      EXPECT_EQ(small[t][i], small_copy[t][i]);
    }
  }

  EXPECT_THROW(ClipDefense(0.0), ConfigError);
  EXPECT_THROW(ClipDefense(-1.0), ConfigError);
  EXPECT_THROW(GaussianNoiseDefense(0.0), ConfigError);
}

TEST(Defense, StackStreamsArePureFunctionsOfRoundClientAndStage) {
  DefenseStack stack;
  stack.add(std::make_unique<GaussianNoiseDefense>(0.1));

  DefenseContext ctx;
  ctx.round = 3;
  ctx.client_id = 7;
  auto a = toy_gradients(9);
  auto b = toy_gradients(9);
  stack.apply(a, ctx);
  stack.apply(b, ctx);
  for (std::size_t t = 0; t < a.size(); ++t) {
    for (index_t i = 0; i < a[t].size(); ++i) EXPECT_EQ(a[t][i], b[t][i]);
  }

  // A different round or client draws a different stream.
  auto c = toy_gradients(9);
  ctx.round = 4;
  stack.apply(c, ctx);
  bool differs = false;
  for (std::size_t t = 0; t < a.size() && !differs; ++t) {
    for (index_t i = 0; i < a[t].size(); ++i) {
      if (a[t][i] != c[t][i]) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Defense, ParseSpecPreservesOrderAndRejectsMalformedTokens) {
  const auto stack = parse_defense_stack("clip:10,noise:0.01,mask,oasis");
  EXPECT_EQ(stack->size(), 3u);
  EXPECT_EQ(stack->name(), "clip(10)+noise(0.01)+mask");
  EXPECT_TRUE(stack->requires_cohort());
  EXPECT_TRUE(stack->augmentation_requested());

  EXPECT_TRUE(parse_defense_stack("")->empty());
  EXPECT_TRUE(parse_defense_stack("none")->empty());
  EXPECT_FALSE(parse_defense_stack("clip:5")->requires_cohort());

  EXPECT_THROW(parse_defense_stack("clip"), ConfigError);
  EXPECT_THROW(parse_defense_stack("clip:0"), ConfigError);
  EXPECT_THROW(parse_defense_stack("clip:abc"), ConfigError);
  EXPECT_THROW(parse_defense_stack("clip:1x"), ConfigError);
  EXPECT_THROW(parse_defense_stack("noise:-0.5"), ConfigError);
  EXPECT_THROW(parse_defense_stack("bogus"), ConfigError);
}

TEST(Defense, MaskStageNeedsACohort) {
  const auto stack = parse_defense_stack("mask");
  ClientUpdateMessage update;
  update.round = 1;
  update.client_id = 0;
  update.num_examples = 1;
  update.gradients = tensor::serialize_tensors(toy_gradients(4));
  EXPECT_THROW(stack->apply(update), ConfigError);

  // The static cohort unblocks the socket path.
  auto configured = parse_defense_stack("mask");
  configured->set_static_cohort({0, 1, 2});
  EXPECT_NO_THROW(configured->apply(update));
}

TEST(Defense, MasksCancelInEqualWeightFullCohortSum) {
  const std::vector<std::uint64_t> cohort{0, 1, 2, 3};
  const auto stack = parse_defense_stack("mask");

  // Zero gradients isolate the masks: the cohort sum is exactly the
  // telescoped pairwise masks, which must vanish (up to fp fold error).
  std::vector<tensor::Tensor> sum;
  for (const auto id : cohort) {
    std::vector<tensor::Tensor> grads;
    grads.push_back(tensor::Tensor(tensor::Shape{5, 2}));
    grads.push_back(tensor::Tensor(tensor::Shape{3}));
    DefenseContext ctx;
    ctx.round = 6;
    ctx.client_id = id;
    ctx.cohort = cohort;
    stack->apply(grads, ctx);
    // An individual masked update is NOT zero (it is masked noise).
    EXPECT_GT(global_norm(grads), 0.1);
    if (sum.empty()) {
      sum = std::move(grads);
    } else {
      for (std::size_t t = 0; t < sum.size(); ++t) sum[t] += grads[t];
    }
  }
  EXPECT_LT(global_norm(sum), 1e-9);
}

// --- Defended-federation determinism ----------------------------------------

struct DefendedRun {
  tensor::ByteBuffer final_state;
  std::map<std::string, std::uint64_t> counters;
};

DefendedRun run_defended(index_t threads, const std::string& spec) {
  runtime::set_num_threads(threads);
  obs::Registry::global().reset();
  SimulationConfig sc;
  sc.clients_per_round = 4;
  sc.seed = 11;
  auto sim = make_federation(/*n_clients=*/6, sc);
  sim->set_defense_stack(parse_defense_stack(spec));
  sim->run(3);
  DefendedRun out;
  out.final_state = nn::serialize_state(sim->server().global_model());
  for (const auto& [name, value] : obs::Registry::global().counters()) {
    if (name.rfind("fl.defense.", 0) == 0) out.counters[name] = value;
  }
  return out;
}

TEST(DefenseDeterminism, DefendedRoundsAreByteIdenticalAt1Vs8Threads) {
  for (const std::string spec :
       {"clip:5,noise:0.01", "clip:5,noise:0.01,mask", "noise:0.01,clip:5"}) {
    const auto one = run_defended(1, spec);
    const auto eight = run_defended(8, spec);
    runtime::set_num_threads(0);
    EXPECT_EQ(one.final_state, eight.final_state) << "spec: " << spec;
    EXPECT_EQ(one.counters, eight.counters) << "spec: " << spec;
    EXPECT_GT(one.counters.at("fl.defense.applied"), 0u);
  }
}

TEST(DefenseDeterminism, StageCountersLandPerStage) {
  const auto run = run_defended(1, "clip:0.0001,noise:0.01");
  runtime::set_num_threads(0);
  // 3 rounds × 4 clients, every update passes both stages; the tiny clip
  // bound guarantees the clip actually bites every time.
  EXPECT_EQ(run.counters.at("fl.defense.applied"), 12u);
  EXPECT_EQ(run.counters.at("fl.defense.clip"), 12u);
  EXPECT_EQ(run.counters.at("fl.defense.clip.active"), 12u);
  EXPECT_EQ(run.counters.at("fl.defense.noise"), 12u);
}

// --- Audit gate --------------------------------------------------------------

TEST(Audit, HonestInitsAreNeverRefusedAcross120Seeds) {
  obs::Registry::global().reset();
  const auto auditor = attack::make_model_auditor();
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    common::Rng rng(seed);
    auto model = nn::make_attack_host(kSpec, kNeurons, kClasses, rng);
    EXPECT_NO_THROW(auditor(*model, /*round=*/seed)) << "seed " << seed;
  }
  EXPECT_EQ(counter_value("fl.audit.inspected"), 120u);
  EXPECT_EQ(counter_value("fl.audit.refused"), 0u);
}

TEST(Audit, RefusesRtfImplant) {
  obs::Registry::global().reset();
  auto aux = tiny_dataset(4, 77);
  common::Rng rng(5);
  auto model = nn::make_attack_host(kSpec, kNeurons, kClasses, rng);
  attack::RtfAttack rtf(kSpec, kNeurons, aux);
  rtf.implant(*model);
  const auto auditor = attack::make_model_auditor();
  EXPECT_THROW(auditor(*model, 0), AuditError);
  EXPECT_EQ(counter_value("fl.audit.refused"), 1u);
  EXPECT_GE(counter_value("fl.audit.reject.rtf_rows"), 1u);
}

TEST(Audit, RefusesCahHalfNegativeTrapImplant) {
  obs::Registry::global().reset();
  auto aux = tiny_dataset(4, 78);
  common::Rng rng(6);
  auto model = nn::make_attack_host(kSpec, kNeurons, kClasses, rng);
  attack::CahAttack cah(kSpec, kNeurons, /*target_rate=*/0.2, aux, 0xCA11,
                        attack::CahWeightMode::kTrapHalfNegative);
  cah.implant(*model);
  const auto auditor = attack::make_model_auditor();
  EXPECT_THROW(auditor(*model, 0), AuditError);
  EXPECT_GE(counter_value("fl.audit.reject.trap_rows"), 1u);
}

TEST(Audit, SimulationProceedsWithTheRemainingCohort) {
  obs::Registry::global().reset();
  SimulationConfig sc;
  sc.clients_per_round = 0;  // all 4 clients
  sc.seed = 11;
  // Two of four clients run the audit gate.
  auto sim = make_federation(4, sc, attack::make_model_auditor(),
                             /*audited_clients=*/2);
  auto aux = tiny_dataset(4, 79);
  attack::RtfAttack rtf(kSpec, kNeurons, aux);
  rtf.implant(sim->server().global_model());
  const auto before = nn::serialize_state(sim->server().global_model());

  const auto ids = sim->run_round();
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_EQ(counter_value("fl.audit.refused"), 2u);
  EXPECT_EQ(counter_value("fl.clients_trained"), 2u);
  // The two unaudited updates committed: the model moved.
  EXPECT_NE(nn::serialize_state(sim->server().global_model()), before);
  EXPECT_EQ(sim->server().round(), 1u);
}

TEST(Audit, FullyAuditedFederationSkipsTheRoundEntirely) {
  obs::Registry::global().reset();
  SimulationConfig sc;
  sc.clients_per_round = 0;
  sc.seed = 11;
  auto sim = make_federation(4, sc, attack::make_model_auditor(),
                             /*audited_clients=*/4);
  auto aux = tiny_dataset(4, 80);
  attack::RtfAttack rtf(kSpec, kNeurons, aux);
  rtf.implant(sim->server().global_model());
  const auto before = nn::serialize_state(sim->server().global_model());

  sim->run_round();
  EXPECT_EQ(counter_value("fl.audit.refused"), 4u);
  EXPECT_EQ(counter_value("fl.clients_trained"), 0u);
  // Zero updates → the SGD step is skipped, the implant gains nothing.
  EXPECT_EQ(nn::serialize_state(sim->server().global_model()), before);
  EXPECT_EQ(sim->server().round(), 1u);

  // Quorum turns mass refusal into a typed abort instead.
  obs::Registry::global().reset();
  sc.quorum_fraction = 0.5;
  auto strict = make_federation(4, sc, attack::make_model_auditor(), 4);
  attack::RtfAttack rtf2(kSpec, kNeurons, aux);
  rtf2.implant(strict->server().global_model());
  EXPECT_THROW(strict->run_round(), QuorumError);
}

TEST(Audit, ShardedEngineExcludesRefusingClients) {
  obs::Registry::global().reset();
  VirtualPopulationConfig pc;
  pc.num_clients = 12;
  pc.seed = 21;
  pc.height = pc.width = 10;
  pc.num_classes = kClasses;
  pc.factory = host_factory(40);
  pc.auditor = attack::make_model_auditor();
  ShardedConfig sc;
  sc.cohort_size = 8;
  sc.shard_size = 3;
  sc.seed = 9;
  ShardedSimulation sim(std::make_unique<Server>(host_factory(40)(), 0.1),
                        VirtualPopulation(pc), sc);
  auto aux = tiny_dataset(4, 81);
  attack::RtfAttack rtf(kSpec, kNeurons, aux);
  rtf.implant(sim.server().global_model());
  const auto before = nn::serialize_state(sim.server().global_model());

  const index_t cohort = sim.run_round();
  EXPECT_EQ(cohort, 8u);
  EXPECT_EQ(counter_value("fl.audit.refused"), 8u);
  EXPECT_EQ(counter_value("fl.clients_trained"), 0u);
  EXPECT_EQ(nn::serialize_state(sim.server().global_model()), before);
  EXPECT_EQ(sim.server().round(), 1u);
}

TEST(Audit, SocketClientRefusesSilentlyAndServerMovesOn) {
  obs::Registry::global().reset();
  const auto data = tiny_dataset(4, 44);
  const auto shards = data.shard(2);
  auto make_core = [&](std::uint64_t id) {
    return std::make_unique<Client>(
        id, shards[id], host_factory(40), /*batch_size=*/3,
        std::make_shared<IdentityPreprocessor>(), common::Rng(600 + id));
  };
  auto honest = make_core(0);
  auto vigilant = make_core(1);
  vigilant->set_model_auditor(attack::make_model_auditor());

  Server core(host_factory(40)(), 0.1);
  auto aux = tiny_dataset(4, 82);
  attack::RtfAttack rtf(kSpec, kNeurons, aux);
  rtf.implant(core.global_model());

  net::FlServerConfig cfg;
  cfg.cohort_size = 2;
  cfg.rounds = 1;
  cfg.round_timeout_ms = 300;  // the deadline that sheds the silent refuser
  std::uint64_t t = 0;
  const net::TimeSource clock = [&t] { return t; };
  net::FlServer server(core, cfg, clock);
  server.listen("127.0.0.1", 0);

  net::FlClientConfig c0;
  c0.client_id = 0;
  net::FlClient nc0(*honest, c0, clock);
  net::FlClientConfig c1;
  c1.client_id = 1;
  net::FlClient nc1(*vigilant, c1, clock);
  nc0.connect("127.0.0.1", server.port());
  nc1.connect("127.0.0.1", server.port());

  bool done = false;
  for (int i = 0; i < 200000 && !done; ++i) {
    server.step(0);
    if (!nc0.finished()) nc0.step(0);
    if (!nc1.finished()) nc1.step(0);
    ++t;
    done = server.finished();
  }
  ASSERT_TRUE(done) << "federation hung";
  // Let the clients consume their goodbyes.
  for (int k = 0; k < 64 && !nc0.finished(); ++k) nc0.step(0);
  for (int k = 0; k < 64 && !nc1.finished(); ++k) nc1.step(0);

  EXPECT_EQ(core.round(), 1u);
  EXPECT_EQ(nc0.rounds_completed(), 1u);
  EXPECT_EQ(nc1.rounds_refused(), 1u);
  EXPECT_EQ(nc1.updates_sent(), 0u);
  EXPECT_EQ(counter_value("net.client.rounds_refused"), 1u);
  EXPECT_EQ(counter_value("fl.audit.refused"), 1u);
}

// --- Byzantine chaos ---------------------------------------------------------

FaultConfig byzantine_faults(real fraction, std::uint64_t seed) {
  FaultConfig fc;
  fc.byzantine_fraction = fraction;
  fc.byzantine_kind = ByzantineKind::kSignFlip;
  fc.byzantine_scale = 10.0;
  fc.seed = seed;
  return fc;
}

tensor::ByteBuffer run_byzantine(const AggregatorConfig& agg,
                                 const FaultConfig* faults, index_t rounds) {
  obs::Registry::global().reset();
  SimulationConfig sc;
  sc.clients_per_round = 0;  // the full 10-client cohort, every round
  sc.seed = 11;
  auto sim = make_federation(/*n_clients=*/10, sc);
  sim->server().set_aggregator(agg);
  if (faults) sim->set_fault_plan(FaultPlan(*faults));
  sim->run(rounds);
  return nn::serialize_state(sim->server().global_model());
}

real state_distance(const tensor::ByteBuffer& a, const tensor::ByteBuffer& b) {
  auto ma = host_factory(40)();
  auto mb = host_factory(40)();
  nn::deserialize_state(*ma, a);
  nn::deserialize_state(*mb, b);
  const auto pa = ma->parameters();
  const auto pb = mb->parameters();
  real sq = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (index_t j = 0; j < pa[i]->value.size(); ++j) {
      const real d = pa[i]->value[j] - pb[i]->value[j];
      sq += d * d;
    }
  }
  return std::sqrt(sq);
}

/// Attackers under the plan's persistent-membership stream, over the 10-id
/// population the federation uses.
index_t attacker_count(const FaultConfig& fc) {
  const FaultPlan plan(fc);
  index_t n = 0;
  for (std::uint64_t id = 0; id < 10; ++id) {
    if (plan.byzantine(id)) ++n;
  }
  return n;
}

TEST(ByzantineChaos, SignFlipMinorityBreaksFedAvgButNotRobustAggregators) {
  constexpr index_t kRounds = 4;
  // ε: the robust aggregators must stay this close to their own clean run.
  // Clean-vs-clean distance is 0 by construction; the margin absorbs the
  // outlier-free coordinates the attackers still shift slightly.
  constexpr real kEps = 1.0;

  for (const real fraction : {0.1, 0.3}) {
    // Seed chosen so the persistent attacker set is non-empty and a strict
    // minority (asserted, not assumed): 2 attackers at 0.1, 3 at 0.3.
    const FaultConfig fc = byzantine_faults(fraction, /*seed=*/0);
    const index_t attackers = attacker_count(fc);
    ASSERT_GE(attackers, 1u) << "fraction " << fraction;
    ASSERT_LT(attackers, 5u) << "fraction " << fraction;

    AggregatorConfig fedavg_cfg;  // kFedAvg
    AggregatorConfig median_cfg;
    median_cfg.kind = AggregatorKind::kCoordinateMedian;
    AggregatorConfig trimmed_cfg;
    trimmed_cfg.kind = AggregatorKind::kTrimmedMean;
    trimmed_cfg.trim_fraction = 0.4;  // floor(0.4·10) = 4 ≥ attackers

    for (const auto& [agg, robust] :
         std::vector<std::pair<AggregatorConfig, bool>>{
             {fedavg_cfg, false}, {median_cfg, true}, {trimmed_cfg, true}}) {
      const auto clean = run_byzantine(agg, nullptr, kRounds);
      const auto attacked = run_byzantine(agg, &fc, kRounds);
      const real dist = state_distance(clean, attacked);
      if (robust) {
        EXPECT_LT(dist, kEps)
            << to_string(agg.kind) << " drifted under " << attackers
            << " sign-flip attackers";
      } else {
        // Measured drift: ~6.1 at f=0.1 (2 attackers), ~23 at f=0.3 (3) —
        // versus ~0.35 for both robust rules. The 5ε floor sits in the gap.
        EXPECT_GT(dist, 5 * kEps)
            << "fedavg should be dragged far off by " << attackers
            << " sign-flip attackers";
      }
    }
  }
}

TEST(ByzantineChaos, ColludingDuplicatesVoteOneDirectionAndMedianHolds) {
  FaultConfig fc = byzantine_faults(0.3, /*seed=*/3);
  fc.byzantine_kind = ByzantineKind::kColludingDuplicate;
  fc.byzantine_scale = 5.0;
  ASSERT_GE(attacker_count(fc), 1u);

  AggregatorConfig median_cfg;
  median_cfg.kind = AggregatorKind::kCoordinateMedian;
  const auto clean = run_byzantine(median_cfg, nullptr, 3);
  const auto attacked = run_byzantine(median_cfg, &fc, 3);
  EXPECT_LT(state_distance(clean, attacked), 1.0);

  AggregatorConfig fedavg_cfg;
  const auto clean_avg = run_byzantine(fedavg_cfg, nullptr, 3);
  const auto attacked_avg = run_byzantine(fedavg_cfg, &fc, 3);
  EXPECT_GT(state_distance(clean_avg, attacked_avg), 1.0);
}

TEST(ByzantineChaos, ByzantineDeliveriesAreCountedAndThreadInvariant) {
  const FaultConfig fc = byzantine_faults(0.3, /*seed=*/3);
  const index_t attackers = attacker_count(fc);
  AggregatorConfig median_cfg;
  median_cfg.kind = AggregatorKind::kCoordinateMedian;

  auto run_at = [&](index_t threads) {
    runtime::set_num_threads(threads);
    obs::Registry::global().reset();
    SimulationConfig sc;
    sc.clients_per_round = 0;
    sc.seed = 11;
    auto sim = make_federation(10, sc);
    sim->server().set_aggregator(median_cfg);
    sim->set_fault_plan(FaultPlan(fc));
    sim->run(3);
    return std::pair(nn::serialize_state(sim->server().global_model()),
                     counter_value("fl.fault.byzantine"));
  };
  const auto one = run_at(1);
  const auto eight = run_at(8);
  runtime::set_num_threads(0);
  EXPECT_EQ(one.first, eight.first);
  EXPECT_EQ(one.second, eight.second);
  EXPECT_EQ(one.second, static_cast<std::uint64_t>(attackers) * 3);
}

TEST(ByzantineChaos, ShardedEngineRefusesBufferingAggregators) {
  VirtualPopulationConfig pc;
  pc.num_clients = 8;
  pc.seed = 21;
  pc.height = pc.width = 10;
  pc.num_classes = kClasses;
  pc.factory = host_factory(40);
  ShardedConfig sc;
  sc.shard_size = 4;
  sc.aggregator.kind = AggregatorKind::kCoordinateMedian;
  EXPECT_THROW(ShardedSimulation(std::make_unique<Server>(host_factory(40)(),
                                                          0.1),
                                 VirtualPopulation(pc), sc),
               ConfigError);

  // Norm-bounded streams: same engine, same memory contract, and the clip
  // absorbs a scale-blowup attacker.
  ShardedConfig ok = sc;
  ok.aggregator.kind = AggregatorKind::kNormBounded;
  ok.aggregator.norm_bound = 1.0;
  ShardedSimulation sim(std::make_unique<Server>(host_factory(40)(), 0.1),
                        VirtualPopulation(pc), ok);
  FaultConfig fc = byzantine_faults(0.3, 3);
  fc.byzantine_kind = ByzantineKind::kScaleBlowup;
  fc.byzantine_scale = 1e3;
  sim.set_fault_plan(FaultPlan(fc));
  EXPECT_NO_THROW(sim.run(2));
  const auto params = sim.server().global_model().parameters();
  for (const auto* p : params) {
    for (index_t i = 0; i < p->value.size(); ++i) {
      ASSERT_TRUE(std::isfinite(p->value[i]));
    }
  }
}

}  // namespace
}  // namespace oasis::fl
