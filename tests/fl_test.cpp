// FL simulator tests: message round trips, FedAvg arithmetic, client
// gradient correctness, honest/malicious server behaviour, full rounds.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "data/synthetic.h"
#include "fl/aggregation.h"
#include "fl/client.h"
#include "fl/server.h"
#include "fl/simulation.h"
#include "nn/dense.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "tensor/ops.h"

namespace oasis::fl {
namespace {

data::InMemoryDataset tiny_dataset(index_t n, index_t classes,
                                   std::uint64_t seed) {
  data::SynthConfig cfg;
  cfg.num_classes = classes;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = n;
  cfg.test_per_class = 0;
  cfg.seed = seed;
  return data::generate(cfg).train;
}

ModelFactory tiny_factory(std::uint64_t seed) {
  return [seed] {
    common::Rng rng(seed);
    return nn::make_mlp({3, 8, 8}, {16}, 4, rng);
  };
}

TEST(Aggregation, UnweightedMeanOfTwoUpdates) {
  ClientUpdateMessage a, b;
  a.num_examples = 1;
  b.num_examples = 1;
  a.gradients = tensor::serialize_tensors({tensor::Tensor({2}, {2.0, 4.0})});
  b.gradients = tensor::serialize_tensors({tensor::Tensor({2}, {4.0, 8.0})});
  const std::vector<ClientUpdateMessage> updates{a, b};
  const auto avg = fedavg_unweighted(updates);
  ASSERT_EQ(avg.size(), 1u);
  EXPECT_DOUBLE_EQ(avg[0][0], 3.0);
  EXPECT_DOUBLE_EQ(avg[0][1], 6.0);
}

TEST(Aggregation, ExampleWeightedMean) {
  ClientUpdateMessage a, b;
  a.num_examples = 3;
  b.num_examples = 1;
  a.gradients = tensor::serialize_tensors({tensor::Tensor({1}, {4.0})});
  b.gradients = tensor::serialize_tensors({tensor::Tensor({1}, {8.0})});
  const std::vector<ClientUpdateMessage> updates{a, b};
  const auto avg = fedavg(updates);
  EXPECT_DOUBLE_EQ(avg[0][0], (3.0 * 4.0 + 8.0) / 4.0);
}

TEST(Aggregation, RejectsEmptyAndMismatched) {
  const std::vector<ClientUpdateMessage> none;
  EXPECT_THROW(fedavg(none), Error);

  ClientUpdateMessage a, b;
  a.num_examples = b.num_examples = 1;
  a.gradients = tensor::serialize_tensors({tensor::Tensor({2})});
  b.gradients =
      tensor::serialize_tensors({tensor::Tensor({2}), tensor::Tensor({2})});
  const std::vector<ClientUpdateMessage> bad{a, b};
  EXPECT_THROW(fedavg(bad), Error);
}

TEST(Client, UpdateMatchesDirectGradientComputation) {
  // A client round must produce exactly the gradients of one forward/backward
  // on its sampled batch — verified by replaying with the same RNG.
  auto dataset = tiny_dataset(6, 4, 11);
  Client client(7, dataset, tiny_factory(5), 4,
                std::make_shared<IdentityPreprocessor>(), common::Rng(42));

  auto global = tiny_factory(99)();  // a different global model state
  GlobalModelMessage msg;
  msg.round = 3;
  msg.model_state = nn::serialize_state(*global);
  const ClientUpdateMessage update = client.handle_round(msg);
  EXPECT_EQ(update.round, 3u);
  EXPECT_EQ(update.client_id, 7u);
  EXPECT_EQ(update.num_examples, 4u);

  // Replay manually.
  auto replica = tiny_factory(5)();
  nn::deserialize_state(*replica, msg.model_state);
  const data::Batch& batch = client.last_raw_batch();
  replica->zero_grad();
  nn::SoftmaxCrossEntropy loss_fn;
  const auto logits = replica->forward(batch.images, true);
  const auto loss = loss_fn.compute(logits, batch.labels);
  replica->backward(loss.grad_logits);
  const auto expected = nn::snapshot_gradients(*replica);
  const auto actual = tensor::deserialize_tensors(update.gradients);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_TRUE(tensor::allclose(actual[i], expected[i]));
  }
  EXPECT_NEAR(client.last_loss(), loss.loss, 1e-12);
}

TEST(Client, UniqueLabelSamplingYieldsDistinctLabels) {
  auto dataset = tiny_dataset(5, 4, 12);
  Client client(0, dataset, tiny_factory(6), 4,
                std::make_shared<IdentityPreprocessor>(), common::Rng(1),
                BatchSampling::kUniqueLabels);
  auto global = tiny_factory(6)();
  GlobalModelMessage msg;
  msg.model_state = nn::serialize_state(*global);
  for (int round = 0; round < 5; ++round) {
    client.handle_round(msg);
    auto labels = client.last_raw_batch().labels;
    std::sort(labels.begin(), labels.end());
    EXPECT_TRUE(std::adjacent_find(labels.begin(), labels.end()) ==
                labels.end());
  }
}

TEST(Client, RejectsOversizedBatch) {
  auto dataset = tiny_dataset(1, 4, 13);  // 4 examples total
  EXPECT_THROW(Client(0, dataset, tiny_factory(6), 10,
                      std::make_shared<IdentityPreprocessor>(),
                      common::Rng(1)),
               Error);
}

TEST(Server, AppliesAveragedGradients) {
  auto model = tiny_factory(21)();
  const auto before = nn::snapshot_state(*model);
  Server server(std::move(model), /*learning_rate=*/0.5);

  // One fake update: gradient = all ones for every parameter.
  auto ref = tiny_factory(21)();
  std::vector<tensor::Tensor> ones;
  for (auto* p : ref->parameters()) {
    ones.push_back(tensor::Tensor::full(p->value.shape(), 1.0));
  }
  ClientUpdateMessage update;
  update.num_examples = 2;
  update.gradients = tensor::serialize_tensors(ones);
  const std::vector<ClientUpdateMessage> updates{update};
  server.finish_round(updates);
  EXPECT_EQ(server.round(), 1u);

  const auto after = nn::snapshot_state(server.global_model());
  const auto params = server.global_model().parameters().size();
  for (std::size_t i = 0; i < params; ++i) {
    tensor::Tensor expected = before[i];
    expected += tensor::Tensor::full(before[i].shape(), -0.5);
    EXPECT_TRUE(tensor::allclose(after[i], expected));
  }
}

TEST(MaliciousServer, ManipulatesDispatchAndCapturesUpdates) {
  // The manipulator pins the first Dense bias to a sentinel; the dispatched
  // state must carry it, and all updates must be captured.
  auto manipulator = [](nn::Sequential& m) {
    auto* dense = dynamic_cast<nn::Dense*>(&m.at(1));
    ASSERT_NE(dense, nullptr);
    dense->bias().value.fill(-123.0);
  };
  MaliciousServer server(tiny_factory(31)(), 0.1, manipulator);
  const GlobalModelMessage msg = server.begin_round();

  auto replica = tiny_factory(31)();
  nn::deserialize_state(*replica, msg.model_state);
  auto* dense = dynamic_cast<nn::Dense*>(&replica->at(1));
  ASSERT_NE(dense, nullptr);
  EXPECT_DOUBLE_EQ(dense->bias().value[0], -123.0);

  auto dataset = tiny_dataset(4, 4, 14);
  Client client(0, dataset, tiny_factory(31), 2,
                std::make_shared<IdentityPreprocessor>(), common::Rng(2));
  const std::vector<ClientUpdateMessage> updates{client.handle_round(msg)};
  server.finish_round(updates);
  EXPECT_EQ(server.captured().size(), 1u);
  EXPECT_EQ(server.captured()[0].client_id, 0u);
}

TEST(Simulation, RunsRoundsAndSelectsClients) {
  auto dataset = tiny_dataset(6, 4, 15);
  const auto shards = dataset.shard(3);
  std::vector<std::unique_ptr<Client>> clients;
  for (index_t i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, shards[i], tiny_factory(41), 3,
        std::make_shared<IdentityPreprocessor>(), common::Rng(100 + i)));
  }
  auto server = std::make_unique<Server>(tiny_factory(41)(), 0.05);
  Simulation sim(std::move(server), std::move(clients),
                 SimulationConfig{/*clients_per_round=*/2, /*seed=*/3});
  const auto ids = sim.run_round();
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(sim.server().round(), 1u);
  index_t rounds_seen = 0;
  sim.run(3, [&](index_t) { ++rounds_seen; });
  EXPECT_EQ(rounds_seen, 3u);
  EXPECT_EQ(sim.server().round(), 4u);
}

TEST(Simulation, FederatedTrainingReducesLoss) {
  // End-to-end: three honest clients training a shared model must reduce the
  // average local loss over rounds.
  auto dataset = tiny_dataset(12, 4, 16);
  const auto shards = dataset.shard(3);
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<Client*> raw;
  for (index_t i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, shards[i], tiny_factory(51), 8,
        std::make_shared<IdentityPreprocessor>(), common::Rng(200 + i)));
    raw.push_back(clients.back().get());
  }
  auto server = std::make_unique<Server>(tiny_factory(51)(), 0.25);
  Simulation sim(std::move(server), std::move(clients), SimulationConfig{});

  real early = 0.0, late = 0.0;
  const int rounds = 200;
  for (int r = 0; r < rounds; ++r) {
    sim.run_round();
    real avg = 0.0;
    for (auto* c : raw) avg += c->last_loss();
    avg /= 3.0;
    if (r < 10) early += avg;
    if (r >= rounds - 10) late += avg;
  }
  EXPECT_LT(late, early * 0.8);
}

TEST(Simulation, ValidatesConfiguration) {
  auto dataset = tiny_dataset(2, 4, 17);
  std::vector<std::unique_ptr<Client>> clients;
  clients.push_back(std::make_unique<Client>(
      0, dataset, tiny_factory(61), 2,
      std::make_shared<IdentityPreprocessor>(), common::Rng(1)));
  auto server = std::make_unique<Server>(tiny_factory(61)(), 0.1);
  EXPECT_THROW(Simulation(std::move(server), std::move(clients),
                          SimulationConfig{/*clients_per_round=*/5}),
               Error);
}

TEST(Client, SingleLocalStepPseudoGradientEqualsRawGradient) {
  // With steps=1, raw-gradient mode and pseudo-gradient mode must agree:
  // (w − (w − lr·g)) / lr == g. Verified by running two identical clients.
  auto dataset = tiny_dataset(6, 4, 19);
  Client raw(0, dataset, tiny_factory(81), 4,
             std::make_shared<IdentityPreprocessor>(), common::Rng(5));
  Client pseudo(0, dataset, tiny_factory(81), 4,
                std::make_shared<IdentityPreprocessor>(), common::Rng(5));
  pseudo.set_local_training(1, 0.05);
  // steps == 1 keeps the raw path even in local-training mode… unless lr>0
  // switches modes; either way the uploaded tensors must match numerically.
  auto global = tiny_factory(81)();
  GlobalModelMessage msg;
  msg.model_state = nn::serialize_state(*global);
  const auto a = tensor::deserialize_tensors(raw.handle_round(msg).gradients);
  const auto b =
      tensor::deserialize_tensors(pseudo.handle_round(msg).gradients);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(tensor::allclose(a[i], b[i], 1e-9, 1e-12));
  }
}

TEST(Client, MultiStepLocalTrainingReducesLocalLoss) {
  auto dataset = tiny_dataset(16, 4, 20);
  Client client(0, dataset, tiny_factory(91), 16,
                std::make_shared<IdentityPreprocessor>(), common::Rng(6));
  client.set_local_training(/*steps=*/20, /*lr=*/0.2);
  auto global = tiny_factory(91)();
  GlobalModelMessage msg;
  msg.model_state = nn::serialize_state(*global);
  const auto update = client.handle_round(msg);
  // num_examples counts every local step's batch.
  EXPECT_EQ(update.num_examples, 20u * 16u);
  // The pseudo-gradient applied at lr reproduces the locally-trained model,
  // whose loss must beat the dispatched model's initial loss.
  const real after = client.last_loss();
  Client fresh(1, dataset, tiny_factory(91), 16,
               std::make_shared<IdentityPreprocessor>(), common::Rng(6));
  fresh.handle_round(msg);
  const real before = fresh.last_loss();
  EXPECT_LT(after, before * 0.9);
}

TEST(Client, MultiStepFederationConverges) {
  auto dataset = tiny_dataset(12, 4, 21);
  const auto shards = dataset.shard(2);
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<Client*> raw;
  for (index_t i = 0; i < 2; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, shards[i], tiny_factory(95), 8,
        std::make_shared<IdentityPreprocessor>(), common::Rng(300 + i)));
    clients.back()->set_local_training(5, 0.2);
    raw.push_back(clients.back().get());
  }
  // Server lr equals the client lr so the averaged pseudo-gradients recreate
  // the average of the locally-trained models (classic FedAvg).
  auto server = std::make_unique<Server>(tiny_factory(95)(), 0.2);
  Simulation sim(std::move(server), std::move(clients), SimulationConfig{});
  real early = 0.0, late = 0.0;
  for (int r = 0; r < 40; ++r) {
    sim.run_round();
    const real avg = (raw[0]->last_loss() + raw[1]->last_loss()) / 2.0;
    if (r < 5) early += avg;
    if (r >= 35) late += avg;
  }
  EXPECT_LT(late, early * 0.8);
}

ClientUpdateMessage fake_update(std::uint64_t client_id, real value,
                                std::uint64_t round = 0) {
  auto ref = tiny_factory(21)();
  std::vector<tensor::Tensor> grads;
  for (auto* p : ref->parameters()) {
    grads.push_back(tensor::Tensor::full(p->value.shape(), value));
  }
  ClientUpdateMessage u;
  u.round = round;
  u.client_id = client_id;
  u.num_examples = 1;
  u.gradients = tensor::serialize_tensors(grads);
  return u;
}

TEST(Aggregation, EmptyUpdateSetRaisesTypedError) {
  const std::vector<ClientUpdateMessage> none;
  EXPECT_THROW(fedavg(none), AggregationError);
  EXPECT_THROW(fedavg_unweighted(none), AggregationError);
}

TEST(Validation, RejectsEachFaultClassAndAggregatesTheRest) {
  auto model = tiny_factory(21)();
  const auto before = nn::snapshot_state(*model);
  Server server(std::move(model), /*learning_rate=*/0.5);
  ValidationConfig vc;
  vc.max_grad_norm = 100.0;
  server.set_validation(vc);

  std::vector<ClientUpdateMessage> updates;
  updates.push_back(fake_update(0, 1.0));            // the only valid one
  updates.push_back(fake_update(1, 1.0, /*round=*/5));  // stale round id
  updates.push_back(fake_update(0, 1.0));            // duplicate client 0
  updates.push_back(fake_update(2, 1.0));
  updates.back().gradients.resize(updates.back().gradients.size() / 2 + 3);
  updates.push_back(
      fake_update(3, std::numeric_limits<real>::quiet_NaN()));
  updates.push_back(fake_update(4, 1e9));            // norm outside the band
  updates.push_back(fake_update(5, 1.0));
  updates.back().num_examples = 0;
  updates.push_back(fake_update(6, 1.0));
  updates.back().gradients =
      tensor::serialize_tensors({tensor::Tensor({2}, {1.0, 2.0})});
  // Structural damage with a fixed-up CRC: the count header claims 2^32
  // tensors but the trailer matches, so this must reach (and fail) the
  // structural walk rather than the checksum screen.
  updates.push_back(fake_update(7, 1.0));
  updates.back().gradients[0] = 0xFF;
  updates.back().gradients[4] = 0xFF;
  tensor::reseal_tensors(updates.back().gradients);

  const RoundOutcome outcome = server.finish_round(updates);
  ASSERT_EQ(outcome.reasons.size(), 9u);
  EXPECT_EQ(outcome.reasons[0], RejectReason::kAccepted);
  EXPECT_EQ(outcome.reasons[1], RejectReason::kWrongRound);
  EXPECT_EQ(outcome.reasons[2], RejectReason::kDuplicate);
  // Truncation damages the payload in flight: caught by the CRC trailer
  // check, which runs before any structural parsing.
  EXPECT_EQ(outcome.reasons[3], RejectReason::kChecksumMismatch);
  EXPECT_EQ(outcome.reasons[4], RejectReason::kNonFinite);
  EXPECT_EQ(outcome.reasons[5], RejectReason::kNormTooLarge);
  EXPECT_EQ(outcome.reasons[6], RejectReason::kZeroExamples);
  EXPECT_EQ(outcome.reasons[7], RejectReason::kShapeMismatch);
  EXPECT_EQ(outcome.reasons[8], RejectReason::kMalformed);
  EXPECT_EQ(outcome.accepted, 1u);
  EXPECT_EQ(outcome.rejected, 8u);
  EXPECT_TRUE(outcome.applied);
  EXPECT_EQ(server.round(), 1u);

  // The model advanced by exactly the single valid all-ones update.
  const auto after = nn::snapshot_state(server.global_model());
  for (std::size_t i = 0; i < before.size(); ++i) {
    tensor::Tensor expected = before[i];
    expected += tensor::Tensor::full(before[i].shape(), -0.5);
    EXPECT_TRUE(tensor::allclose(after[i], expected));
  }
}

TEST(Validation, AllRejectedSkipsTheSgdStep) {
  auto model = tiny_factory(21)();
  const auto before = nn::snapshot_state(*model);
  Server server(std::move(model), 0.5);
  std::vector<ClientUpdateMessage> updates{fake_update(0, 1.0, /*round=*/9)};
  const RoundOutcome outcome = server.finish_round(updates);
  EXPECT_EQ(outcome.accepted, 0u);
  EXPECT_FALSE(outcome.applied);
  EXPECT_EQ(server.round(), 1u);  // protocol still advances
  const auto after = nn::snapshot_state(server.global_model());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(tensor::allclose(after[i], before[i]));
  }
  // Same for a fully empty round.
  const std::vector<ClientUpdateMessage> none;
  EXPECT_FALSE(server.finish_round(none).applied);
}

TEST(Validation, UnmetQuorumThrowsBeforeTouchingTheModel) {
  auto model = tiny_factory(21)();
  const auto before = nn::snapshot_state(*model);
  Server server(std::move(model), 0.5);
  std::vector<ClientUpdateMessage> updates{fake_update(0, 1.0)};
  EXPECT_THROW(server.finish_round(updates, /*min_valid=*/2), QuorumError);
  EXPECT_EQ(server.round(), 0u);
  const auto after = nn::snapshot_state(server.global_model());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(tensor::allclose(after[i], before[i]));
  }
  // Quorum of 1 with one valid update commits.
  EXPECT_TRUE(server.finish_round(updates, /*min_valid=*/1).applied);
}

TEST(Simulation, RejectsDuplicateClientIds) {
  auto dataset = tiny_dataset(4, 4, 23);
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 2; ++i) {
    clients.push_back(std::make_unique<Client>(
        /*id=*/7, dataset, tiny_factory(61), 2,
        std::make_shared<IdentityPreprocessor>(), common::Rng(1)));
  }
  auto server = std::make_unique<Server>(tiny_factory(61)(), 0.1);
  EXPECT_THROW(
      Simulation(std::move(server), std::move(clients), SimulationConfig{}),
      Error);
}

TEST(Messages, MalformedModelPayloadThrows) {
  auto dataset = tiny_dataset(2, 4, 18);
  Client client(0, dataset, tiny_factory(71), 2,
                std::make_shared<IdentityPreprocessor>(), common::Rng(1));
  GlobalModelMessage msg;
  msg.model_state = {1, 2, 3};  // garbage
  EXPECT_THROW(client.handle_round(msg), SerializationError);
}

}  // namespace
}  // namespace oasis::fl
