// Golden-fixture replay: one fully seeded FL round under the RTF attack,
// compared field-by-field against tests/fixtures/golden_round.json.
//
// The run is deterministic by construction (seeded RNGs everywhere, and the
// runtime's parallel_for/parallel_reduce contract makes float results
// independent of thread count), so the tolerances are tight: they only
// absorb the %.17g round-trip through the fixture file.
//
// Regenerate after an intentional numerics change with
//   OASIS_GOLDEN_REGEN=1 ./build/tests/golden_test
// and commit the rewritten fixture.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "attack/audit.h"
#include "attack/rtf.h"
#include "core/experiment.h"
#include "core/oasis.h"
#include "data/image.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/defense.h"
#include "fl/server.h"
#include "fl/simulation.h"
#include "net/client.h"
#include "net/server.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "tensor/gemm/gemm.h"
#include "tensor/serialize.h"

namespace oasis {
namespace {

constexpr const char* kFixturePath = OASIS_FIXTURE_DIR "/golden_round.json";

struct GoldenRound {
  double loss = 0.0;       // victim's local loss for the round
  double grad_norm = 0.0;  // L2 norm of the uploaded (serialized) gradients
  double mean_psnr = 0.0;  // best-match PSNR mean over the victim batch
  std::uint64_t rtf_leaked = 0;  // obs counter attack.rtf.bins_leaked
  std::uint64_t rtf_total = 0;   // obs counter attack.rtf.bins_total
  // Update-validation pipeline tallies: regressions that silently start
  // rejecting (or waving through) updates fail the replay.
  std::uint64_t validate_accepted = 0;   // fl.validate.accepted
  std::uint64_t validate_rejected = 0;   // fl.validate.rejected
  // Checkpoint activity (the round does one encode → restore round-trip):
  // pinned so the ckpt subsystem's counter discipline can't drift silently.
  std::uint64_t ckpt_save_total = 0;     // ckpt.save_total
  std::uint64_t ckpt_restore_total = 0;  // ckpt.restore_total
  // Socket serving fingerprint of one loopback round (net.* counters): the
  // frame and byte totals are a pure function of the protocol layout and the
  // fixed model architecture, so drift means the wire format changed.
  std::uint64_t net_frames_sent = 0;     // net.frames.sent
  std::uint64_t net_frames_received = 0; // net.frames.received
  std::uint64_t net_bytes_sent = 0;      // net.bytes.sent
  std::uint64_t net_bytes_received = 0;  // net.bytes.received
  std::uint64_t net_rounds_committed = 0;  // net.round.committed
  // Defended/audited sub-exchange (PR 10): a clip+noise round and an
  // audit-gated round against an RTF implant. Pins the defense stage tallies
  // and the audit gate's inspect/refuse discipline into the fixture.
  std::uint64_t defense_applied = 0;      // fl.defense.applied
  std::uint64_t defense_clip_active = 0;  // fl.defense.clip.active
  std::uint64_t audit_inspected = 0;      // fl.audit.inspected
  std::uint64_t audit_refused = 0;        // fl.audit.refused
};

/// One loopback TCP round (1 client, virtual clock) over a tiny seeded
/// federation — deterministic, so its net.* wire counters pin the framed
/// protocol into the fixture alongside the numeric tallies.
void run_loopback_exchange() {
  data::SynthConfig cfg;
  cfg.num_classes = 4;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 6;
  cfg.test_per_class = 0;
  cfg.seed = 11;
  const data::InMemoryDataset shard = data::generate(cfg).train;
  const fl::ModelFactory factory = [] {
    common::Rng rng(5);
    return nn::make_mlp({3, 8, 8}, {16}, 4, rng);
  };

  fl::Server core(factory(), /*learning_rate=*/0.1);
  net::FlServerConfig server_cfg;
  server_cfg.cohort_size = 1;
  server_cfg.rounds = 1;
  std::uint64_t t = 0;
  const net::TimeSource clock = [&t] { return t; };
  net::FlServer server(core, server_cfg, clock);
  server.listen("127.0.0.1", 0);

  fl::Client client_core(/*id=*/0, shard, factory, /*batch_size=*/4,
                         std::make_shared<fl::IdentityPreprocessor>(),
                         common::Rng(1000));
  net::FlClientConfig client_cfg;
  client_cfg.client_id = 0;
  net::FlClient client(client_core, client_cfg, clock);
  client.connect("127.0.0.1", server.port());
  for (int i = 0; i < 100000 && !server.finished(); ++i) {
    server.step(0);
    if (!client.finished()) client.step(0);
    ++t;
  }
  EXPECT_TRUE(server.finished()) << "loopback exchange did not converge";
}

/// One defended round (clip+noise stack, 2 clients) followed by one
/// audit-gated round against an RTF-implanted global model (both clients
/// refuse; the round commits as skipped). Deterministic, so the fl.defense.*
/// and fl.audit.* tallies are fixture material like every other counter.
void run_defended_exchange() {
  data::SynthConfig cfg;
  cfg.num_classes = 4;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 6;
  cfg.test_per_class = 0;
  cfg.seed = 13;
  const data::InMemoryDataset data = data::generate(cfg).train;
  const auto shards = data.shard(2);
  const fl::ModelFactory factory = [] {
    common::Rng rng(5);
    return nn::make_attack_host({3, 8, 8}, 32, 4, rng);
  };

  auto build = [&](fl::ModelAuditor auditor) {
    std::vector<std::unique_ptr<fl::Client>> clients;
    for (index_t i = 0; i < 2; ++i) {
      clients.push_back(std::make_unique<fl::Client>(
          i, shards[i], factory, /*batch_size=*/4,
          std::make_shared<fl::IdentityPreprocessor>(),
          common::Rng(900 + i)));
      if (auditor) clients[i]->set_model_auditor(auditor);
    }
    return std::make_unique<fl::Simulation>(
        std::make_unique<fl::Server>(factory(), 0.1), std::move(clients),
        fl::SimulationConfig{/*clients_per_round=*/2, /*seed=*/17});
  };

  auto defended = build({});
  defended->set_defense_stack(fl::parse_defense_stack("clip:0.5,noise:0.01"));
  defended->run_round();

  auto audited = build(attack::make_model_auditor());
  cfg.seed = 14;
  const data::InMemoryDataset aux = data::generate(cfg).train;
  attack::RtfAttack rtf({3, 8, 8}, 32, aux);
  rtf.implant(audited->server().global_model());
  audited->run_round();  // both clients refuse; the round commits skipped
}

/// Runs THE seeded round: 1 victim client, malicious RTF server, undefended
/// (WO) so the attack has a reconstruction signal worth pinning down.
GoldenRound run_golden_round() {
  obs::Registry::global().reset();

  data::SynthConfig cfg;
  cfg.num_classes = 10;
  cfg.height = cfg.width = 16;
  cfg.train_per_class = 8;
  cfg.test_per_class = 0;
  cfg.seed = 4242;
  const data::InMemoryDataset victim_data = data::generate(cfg).train;
  cfg.seed = 2424;
  const data::InMemoryDataset aux_data = data::generate(cfg).train;

  const nn::ImageSpec spec{3, 16, 16};
  const index_t neurons = 64;
  const index_t classes = 10;
  const std::uint64_t seed = 7;

  auto atk = std::make_unique<attack::RtfAttack>(spec, neurons, aux_data);

  common::Rng model_rng(seed ^ 0x5EED);
  const fl::ModelFactory factory = [&] {
    return nn::make_attack_host(spec, neurons, classes, model_rng);
  };
  auto server = std::make_unique<fl::MaliciousServer>(
      factory(), /*learning_rate=*/1e-3, atk->manipulator());
  auto* malicious_server = server.get();

  std::vector<std::unique_ptr<fl::Client>> clients;
  clients.push_back(std::make_unique<fl::Client>(
      /*id=*/0, victim_data, factory, /*batch_size=*/8,
      core::make_preprocessor({}), common::Rng(seed ^ 0xC11E)));
  auto* victim = clients.front().get();

  fl::Simulation sim(std::move(server), std::move(clients),
                     fl::SimulationConfig{/*clients_per_round=*/1, seed});
  sim.run_round();

  // Checkpoint round-trip: encode → restore is a provable no-op on live
  // state (every value read below must be unaffected), and it pins the ckpt
  // save/restore counters into the fixture like every other tally.
  sim.restore_checkpoint(sim.encode_checkpoint());

  run_loopback_exchange();
  run_defended_exchange();

  GoldenRound out;
  out.loss = victim->last_loss();

  const auto grads =
      tensor::deserialize_tensors(malicious_server->captured().back().gradients);
  double sq = 0.0;
  for (const auto& g : grads) {
    for (const auto v : g.data()) sq += v * v;
  }
  out.grad_norm = std::sqrt(sq);

  const auto candidates = atk->reconstruct(grads);
  const auto originals = data::unstack_images(victim->last_raw_batch().images);
  const auto scores = attack::best_match_psnr(candidates, originals);
  double psnr_sum = 0.0;
  for (const auto& s : scores) psnr_sum += s.best_psnr;
  out.mean_psnr = psnr_sum / static_cast<double>(scores.size());

  out.rtf_leaked = obs::counter("attack.rtf.bins_leaked").value();
  out.rtf_total = obs::counter("attack.rtf.bins_total").value();
  out.validate_accepted = obs::counter("fl.validate.accepted").value();
  out.validate_rejected = obs::counter("fl.validate.rejected").value();
  out.ckpt_save_total = obs::counter("ckpt.save_total").value();
  out.ckpt_restore_total = obs::counter("ckpt.restore_total").value();
  out.net_frames_sent = obs::counter("net.frames.sent").value();
  out.net_frames_received = obs::counter("net.frames.received").value();
  out.net_bytes_sent = obs::counter("net.bytes.sent").value();
  out.net_bytes_received = obs::counter("net.bytes.received").value();
  out.net_rounds_committed = obs::counter("net.round.committed").value();
  out.defense_applied = obs::counter("fl.defense.applied").value();
  out.defense_clip_active = obs::counter("fl.defense.clip.active").value();
  out.audit_inspected = obs::counter("fl.audit.inspected").value();
  out.audit_refused = obs::counter("fl.audit.refused").value();
  return out;
}

std::string format_fixture(const GoldenRound& g) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"schema\": \"oasis.golden/v1\",\n"
                "  \"loss\": %.17g,\n"
                "  \"grad_norm\": %.17g,\n"
                "  \"mean_psnr\": %.17g,\n"
                "  \"rtf_leaked\": %llu,\n"
                "  \"rtf_total\": %llu,\n"
                "  \"validate_accepted\": %llu,\n"
                "  \"validate_rejected\": %llu,\n"
                "  \"ckpt_save_total\": %llu,\n"
                "  \"ckpt_restore_total\": %llu,\n"
                "  \"net_frames_sent\": %llu,\n"
                "  \"net_frames_received\": %llu,\n"
                "  \"net_bytes_sent\": %llu,\n"
                "  \"net_bytes_received\": %llu,\n"
                "  \"net_rounds_committed\": %llu,\n"
                "  \"defense_applied\": %llu,\n"
                "  \"defense_clip_active\": %llu,\n"
                "  \"audit_inspected\": %llu,\n"
                "  \"audit_refused\": %llu\n"
                "}\n",
                g.loss, g.grad_norm, g.mean_psnr,
                static_cast<unsigned long long>(g.rtf_leaked),
                static_cast<unsigned long long>(g.rtf_total),
                static_cast<unsigned long long>(g.validate_accepted),
                static_cast<unsigned long long>(g.validate_rejected),
                static_cast<unsigned long long>(g.ckpt_save_total),
                static_cast<unsigned long long>(g.ckpt_restore_total),
                static_cast<unsigned long long>(g.net_frames_sent),
                static_cast<unsigned long long>(g.net_frames_received),
                static_cast<unsigned long long>(g.net_bytes_sent),
                static_cast<unsigned long long>(g.net_bytes_received),
                static_cast<unsigned long long>(g.net_rounds_committed),
                static_cast<unsigned long long>(g.defense_applied),
                static_cast<unsigned long long>(g.defense_clip_active),
                static_cast<unsigned long long>(g.audit_inspected),
                static_cast<unsigned long long>(g.audit_refused));
  return buf;
}

/// Minimal field extraction for the fixture we write ourselves ("key": value
/// pairs, one per line) — no JSON parser dependency.
double fixture_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << "fixture missing key " << key;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

TEST(GoldenRoundTest, MatchesCheckedInFixture) {
  const GoldenRound g = run_golden_round();

  if (std::getenv("OASIS_GOLDEN_REGEN")) {
    std::ofstream out(kFixturePath);
    ASSERT_TRUE(out) << "cannot write " << kFixturePath;
    out << format_fixture(g);
    GTEST_SKIP() << "fixture regenerated at " << kFixturePath;
  }

  std::ifstream in(kFixturePath);
  ASSERT_TRUE(in) << "missing fixture " << kFixturePath
                  << " — run with OASIS_GOLDEN_REGEN=1 to create it";
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  ASSERT_NE(text.find("oasis.golden/v1"), std::string::npos);

  // Doubles only pass through a %.17g round trip, which is exact; the
  // tolerance guards against last-bit libm differences, nothing more.
  const double rel = 1e-12;
  const double loss = fixture_number(text, "loss");
  const double grad_norm = fixture_number(text, "grad_norm");
  const double mean_psnr = fixture_number(text, "mean_psnr");
  EXPECT_NEAR(g.loss, loss, rel * std::abs(loss) + 1e-15);
  EXPECT_NEAR(g.grad_norm, grad_norm, rel * std::abs(grad_norm) + 1e-15);
  EXPECT_NEAR(g.mean_psnr, mean_psnr, rel * std::abs(mean_psnr) + 1e-15);
  EXPECT_EQ(g.rtf_leaked,
            static_cast<std::uint64_t>(fixture_number(text, "rtf_leaked")));
  EXPECT_EQ(g.rtf_total,
            static_cast<std::uint64_t>(fixture_number(text, "rtf_total")));
  EXPECT_EQ(g.validate_accepted, static_cast<std::uint64_t>(
                                     fixture_number(text, "validate_accepted")));
  EXPECT_EQ(g.validate_rejected, static_cast<std::uint64_t>(
                                     fixture_number(text, "validate_rejected")));
  EXPECT_EQ(g.net_frames_sent, static_cast<std::uint64_t>(
                                   fixture_number(text, "net_frames_sent")));
  EXPECT_EQ(g.net_frames_received,
            static_cast<std::uint64_t>(
                fixture_number(text, "net_frames_received")));
  EXPECT_EQ(g.net_bytes_sent, static_cast<std::uint64_t>(
                                  fixture_number(text, "net_bytes_sent")));
  EXPECT_EQ(g.net_bytes_received,
            static_cast<std::uint64_t>(
                fixture_number(text, "net_bytes_received")));
  EXPECT_EQ(g.net_rounds_committed,
            static_cast<std::uint64_t>(
                fixture_number(text, "net_rounds_committed")));

  EXPECT_EQ(g.defense_applied, static_cast<std::uint64_t>(
                                   fixture_number(text, "defense_applied")));
  EXPECT_EQ(g.defense_clip_active,
            static_cast<std::uint64_t>(
                fixture_number(text, "defense_clip_active")));
  EXPECT_EQ(g.audit_inspected, static_cast<std::uint64_t>(
                                   fixture_number(text, "audit_inspected")));
  EXPECT_EQ(g.audit_refused, static_cast<std::uint64_t>(
                                 fixture_number(text, "audit_refused")));

  // The leak counters are only meaningful if the attack actually ran, the
  // wire fingerprint only if the loopback exchange served its round, and
  // the defense/audit tallies only if the defended exchange really defended
  // (2 clients through the stack) and the gate really refused the implant.
  EXPECT_GT(g.rtf_total, 0u);
  EXPECT_EQ(g.net_rounds_committed, 1u);
  EXPECT_EQ(g.defense_applied, 2u);
  EXPECT_EQ(g.audit_refused, 2u);
}

TEST(GoldenRoundTest, BlockedAndNaiveGemmPathsMatchExactly) {
  // The blocked GEMM layer is designed to be bit-identical to the naive
  // oracle kernels (DESIGN.md §5f), so the checked-in fixture needs no
  // regeneration for the kernel swap: a full round must produce the very
  // same numbers on either path, down to the last bit.
  tensor::gemm::set_naive(true);
  const GoldenRound oracle = run_golden_round();
  tensor::gemm::set_naive(false);
  const GoldenRound blocked = run_golden_round();
  EXPECT_EQ(oracle.loss, blocked.loss);
  EXPECT_EQ(oracle.grad_norm, blocked.grad_norm);
  EXPECT_EQ(oracle.mean_psnr, blocked.mean_psnr);
  EXPECT_EQ(oracle.rtf_leaked, blocked.rtf_leaked);
  EXPECT_EQ(oracle.rtf_total, blocked.rtf_total);
  EXPECT_EQ(oracle.validate_accepted, blocked.validate_accepted);
  EXPECT_EQ(oracle.validate_rejected, blocked.validate_rejected);
  EXPECT_EQ(oracle.net_bytes_sent, blocked.net_bytes_sent);
  EXPECT_EQ(oracle.net_bytes_received, blocked.net_bytes_received);
}

TEST(GoldenRoundTest, RoundIsDeterministicAcrossThreadCounts) {
  runtime::set_num_threads(1);
  const GoldenRound serial = run_golden_round();
  runtime::set_num_threads(4);
  const GoldenRound parallel = run_golden_round();
  runtime::set_num_threads(0);
  EXPECT_EQ(serial.loss, parallel.loss);
  EXPECT_EQ(serial.grad_norm, parallel.grad_norm);
  EXPECT_EQ(serial.mean_psnr, parallel.mean_psnr);
  EXPECT_EQ(serial.rtf_leaked, parallel.rtf_leaked);
  EXPECT_EQ(serial.rtf_total, parallel.rtf_total);
  EXPECT_EQ(serial.validate_accepted, parallel.validate_accepted);
  EXPECT_EQ(serial.validate_rejected, parallel.validate_rejected);
  EXPECT_EQ(serial.net_bytes_sent, parallel.net_bytes_sent);
  EXPECT_EQ(serial.net_bytes_received, parallel.net_bytes_received);
  EXPECT_EQ(serial.defense_applied, parallel.defense_applied);
  EXPECT_EQ(serial.defense_clip_active, parallel.defense_clip_active);
  EXPECT_EQ(serial.audit_inspected, parallel.audit_inspected);
  EXPECT_EQ(serial.audit_refused, parallel.audit_refused);
}

}  // namespace
}  // namespace oasis
