// Tests for the CIFAR-100 binary loader and the experiment report writers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/cifar_io.h"
#include "data/synthetic.h"
#include "metrics/report.h"
#include "tensor/ops.h"

namespace oasis {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

data::InMemoryDataset cifar_like_dataset(index_t n) {
  data::SynthConfig cfg = data::synth_cifar100_config();
  cfg.num_classes = 100;
  cfg.train_per_class = (n + 99) / 100;
  cfg.test_per_class = 0;
  auto full = data::generate(cfg).train;
  std::vector<index_t> idx;
  for (index_t i = 0; i < n; ++i) idx.push_back(i);
  return full.subset(idx);
}

TEST(CifarIo, WriteLoadRoundTrip) {
  const auto original = cifar_like_dataset(12);
  const std::string path = "/tmp/oasis_cifar_rt.bin";
  data::write_cifar100_bin(original, path);
  const auto loaded = data::load_cifar100_bin(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.num_classes(), 100u);
  for (index_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.at(i).label, original.at(i).label);
    // 8-bit quantization bound.
    EXPECT_LT(tensor::max_abs_diff(loaded.at(i).image, original.at(i).image),
              0.5 / 255.0 + 1e-9);
  }
  std::remove(path.c_str());
}

TEST(CifarIo, MaxExamplesLimitsLoad) {
  const auto original = cifar_like_dataset(10);
  const std::string path = "/tmp/oasis_cifar_lim.bin";
  data::write_cifar100_bin(original, path);
  const auto loaded = data::load_cifar100_bin(path, 4);
  EXPECT_EQ(loaded.size(), 4u);
  std::remove(path.c_str());
}

TEST(CifarIo, RejectsMalformedFiles) {
  const std::string path = "/tmp/oasis_cifar_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a cifar file";
  }
  EXPECT_THROW(data::load_cifar100_bin(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(data::load_cifar100_bin("/tmp/oasis_missing_cifar.bin"),
               Error);
}

TEST(CifarIo, TryLoadReturnsNulloptWhenAbsent) {
  EXPECT_FALSE(data::try_load_cifar100("/tmp/definitely_missing_dir_oasis")
                   .has_value());
}

TEST(CifarIo, TryLoadFindsBothSplits) {
  namespace fs = std::filesystem;
  const fs::path dir = "/tmp/oasis_cifar_dir";
  fs::create_directories(dir);
  const auto ds = cifar_like_dataset(6);
  data::write_cifar100_bin(ds, (dir / "train.bin").string());
  data::write_cifar100_bin(ds, (dir / "test.bin").string());
  const auto splits = data::try_load_cifar100(dir.string(), 4, 2);
  ASSERT_TRUE(splits.has_value());
  EXPECT_EQ(splits->train.size(), 4u);
  EXPECT_EQ(splits->test.size(), 2u);
  fs::remove_all(dir);
}

TEST(CifarIo, WriteRejectsWrongGeometry) {
  data::InMemoryDataset wrong(10, {3, 16, 16});
  wrong.push_back({tensor::Tensor({3, 16, 16}), 0});
  EXPECT_THROW(data::write_cifar100_bin(wrong, "/tmp/x.bin"), Error);
}

TEST(Report, CsvHasUnionOfColumnsInFirstSeenOrder) {
  metrics::ExperimentReport report("unit");
  report.set_context("dataset", std::string("A"));
  report.begin_row();
  report.add("x", 1.0);
  report.set_context("dataset", std::string("B"));
  report.begin_row();
  report.add("y", std::string("two"));
  const std::string path = "/tmp/oasis_report.csv";
  report.write_csv(path);
  const std::string text = read_file(path);
  EXPECT_NE(text.find("experiment,dataset,x,y"), std::string::npos);
  EXPECT_NE(text.find("unit,A,1"), std::string::npos);
  EXPECT_NE(text.find("unit,B,,two"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Report, CsvEscapesSpecialCharacters) {
  metrics::ExperimentReport report("unit");
  report.begin_row();
  report.add("label", std::string("a,b \"quoted\""));
  const std::string path = "/tmp/oasis_report_esc.csv";
  report.write_csv(path);
  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"a,b \"\"quoted\"\"\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Report, JsonIsWellFormedEnough) {
  metrics::ExperimentReport report("unit");
  report.add_box_row("MR", metrics::box_stats({1.0, 2.0, 3.0}));
  const std::string path = "/tmp/oasis_report.json";
  report.write_json(path);
  const std::string text = read_file(path);
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"label\": \"MR\""), std::string::npos);
  EXPECT_NE(text.find("\"median\": 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Report, AddBeforeBeginRowThrows) {
  metrics::ExperimentReport report("unit");
  EXPECT_THROW(report.add("k", 1.0), Error);
}

TEST(Report, BoxRowCarriesAllStats) {
  metrics::ExperimentReport report("unit");
  report.set_context("batch", 8.0);
  report.add_box_row("WO", metrics::box_stats({5.0}));
  EXPECT_EQ(report.rows(), 1u);
  const std::string path = "/tmp/oasis_report_box.csv";
  report.write_csv(path);
  const std::string text = read_file(path);
  for (const char* col : {"batch", "label", "min", "q1", "median", "q3",
                          "max", "mean", "count"}) {
    EXPECT_NE(text.find(col), std::string::npos) << col;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oasis
