// Differential kernel tests: the blocked+packed GEMM layer must reproduce
// the retained naive oracle kernels BIT-FOR-BIT, per dtype and per ISA (see
// DESIGN.md §5f/§5k — every microkernel continues the oracle's ascending-k
// fused-multiply-add chain through C, so every output element sees the
// identical operation sequence regardless of register-tile geometry).
//
// The sweep runs under EVERY ISA available on this host via forced dispatch
// (gemm::set_isa), for both the double fidelity dtype and the float scale
// dtype, covering degenerate shapes, non-tile-multiple edges (including the
// 4/6-row and 8/16-column register-tile boundaries of the scalar, AVX2, and
// NEON kernels), and the KC/NC blocking boundaries, at 1 and 8 threads (the
// intra-GEMM row-panel parallel path included); Conv2d and Dense are
// exercised end-to-end against the OASIS_NAIVE_GEMM toggle. Workspace arena
// semantics (alignment, scope rewind, coalescing, steady-state no-growth)
// are pinned here too, since the kernels' zero-allocation claim rests on
// them.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "runtime/parallel.h"
#include "runtime/workspace.h"
#include "tensor/gemm/gemm.h"
#include "tensor/tensor.h"

namespace oasis {
namespace {

using tensor::gemm::Isa;
using tensor::gemm::Variant;

/// Restores the global thread count, the naive-GEMM switch, and the
/// dispatched ISA even when an assertion aborts a test early.
struct KernelEnvGuard {
  Isa saved = tensor::gemm::active_isa();
  ~KernelEnvGuard() {
    runtime::set_num_threads(0);
    tensor::gemm::set_naive(false);
    tensor::gemm::set_isa(saved);
  }
};

template <typename T>
std::vector<T> random_vec(index_t n, common::Rng& rng) {
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

template <typename T>
bool bits_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

bool bits_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(real)) == 0;
}

template <typename T>
std::vector<T> run_blocked(Variant v, index_t m, index_t k, index_t n,
                           const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> c(m * n, T(0));
  tensor::gemm::blocked(v, m, k, n, a.data(), b.data(), c.data());
  return c;
}

template <typename T>
std::vector<T> run_naive(Variant v, index_t m, index_t k, index_t n,
                         const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> c(m * n, T(0));
  tensor::gemm::naive(v, m, k, n, a.data(), b.data(), c.data());
  return c;
}

struct Shape {
  index_t m, k, n;
};

// Degenerate shapes, ragged tile edges, and the exact blocking boundaries
// (one below, on, and above each): m around the 4- and 6-row register
// tiles, n around the 8- and 16-column tiles, k around the KC=256 and
// n around the NC=512 cache blocks.
const Shape kEdgeShapes[] = {
    {1, 1, 1},    {1, 5, 1},     {3, 1, 4},    {1, 64, 1},   {5, 1, 9},
    {5, 7, 9},    {13, 17, 31},  {4, 8, 8},    {8, 16, 16},  {12, 24, 40},
    {3, 255, 17}, {3, 256, 17},  {3, 257, 17}, {4, 512, 8},  {7, 511, 23},
    {6, 33, 7},   {6, 33, 8},    {6, 33, 9},   {2, 9, 511},  {2, 9, 512},
    {2, 9, 513},  {129, 12, 33}, {7, 40, 15},  {7, 40, 16},  {7, 40, 17},
    {11, 13, 18}, {18, 21, 24},
};

std::string isa_param_name(const ::testing::TestParamInfo<Isa>& info) {
  return tensor::gemm::isa_name(info.param);
}

/// One sweep body shared by every (dtype, ISA) instantiation: naive oracle
/// vs blocked under forced dispatch, serial and 8-thread.
template <typename T>
void sweep_shapes_bit_identical(const char* tag) {
  common::Rng rng(0xD1FFu);
  for (const auto& s : kEdgeShapes) {
    const auto a = random_vec<T>(s.m * s.k, rng);
    const auto b = random_vec<T>(s.k * s.n, rng);
    for (const Variant v : {Variant::NN, Variant::TN, Variant::NT}) {
      const auto oracle = run_naive(v, s.m, s.k, s.n, a, b);
      runtime::set_num_threads(1);
      const auto serial = run_blocked(v, s.m, s.k, s.n, a, b);
      runtime::set_num_threads(8);
      const auto threaded = run_blocked(v, s.m, s.k, s.n, a, b);
      EXPECT_TRUE(bits_equal(oracle, serial))
          << tag << " variant " << static_cast<int>(v) << " shape " << s.m
          << "x" << s.k << "x" << s.n << " (1 thread)";
      EXPECT_TRUE(bits_equal(oracle, threaded))
          << tag << " variant " << static_cast<int>(v) << " shape " << s.m
          << "x" << s.k << "x" << s.n << " (8 threads)";
    }
  }
}

template <typename T>
void sweep_random_bit_identical(const char* tag) {
  common::Rng rng(0x5EEDu);
  for (int trial = 0; trial < 24; ++trial) {
    const auto m = static_cast<index_t>(rng.uniform_int(1, 97));
    const auto k = static_cast<index_t>(rng.uniform_int(1, 97));
    const auto n = static_cast<index_t>(rng.uniform_int(1, 97));
    const auto a = random_vec<T>(m * k, rng);
    const auto b = random_vec<T>(k * n, rng);
    for (const Variant v : {Variant::NN, Variant::TN, Variant::NT}) {
      const auto oracle = run_naive(v, m, k, n, a, b);
      runtime::set_num_threads(1);
      const auto serial = run_blocked(v, m, k, n, a, b);
      runtime::set_num_threads(8);
      const auto threaded = run_blocked(v, m, k, n, a, b);
      EXPECT_TRUE(bits_equal(oracle, serial))
          << tag << " trial " << trial << " variant " << static_cast<int>(v)
          << " shape " << m << "x" << k << "x" << n;
      EXPECT_TRUE(bits_equal(oracle, threaded))
          << tag << " trial " << trial << " variant " << static_cast<int>(v)
          << " shape " << m << "x" << k << "x" << n << " (8 threads)";
    }
  }
}

// ---- Per-ISA differential matrix --------------------------------------------

class IsaSweep : public ::testing::TestWithParam<Isa> {};

TEST_P(IsaSweep, GemmEdgeShapesBitIdenticalF64) {
  KernelEnvGuard guard;
  tensor::gemm::set_isa(GetParam());
  sweep_shapes_bit_identical<real>("f64");
}

TEST_P(IsaSweep, GemmEdgeShapesBitIdenticalF32) {
  KernelEnvGuard guard;
  tensor::gemm::set_isa(GetParam());
  sweep_shapes_bit_identical<real32>("f32");
}

TEST_P(IsaSweep, GemmRandomShapeSweepBitIdenticalF64) {
  KernelEnvGuard guard;
  tensor::gemm::set_isa(GetParam());
  sweep_random_bit_identical<real>("f64");
}

TEST_P(IsaSweep, GemmRandomShapeSweepBitIdenticalF32) {
  KernelEnvGuard guard;
  tensor::gemm::set_isa(GetParam());
  sweep_random_bit_identical<real32>("f32");
}

TEST_P(IsaSweep, GemmAccumulatesIntoExistingC) {
  KernelEnvGuard guard;
  tensor::gemm::set_isa(GetParam());
  common::Rng rng(0xACC0u);
  const index_t m = 21, k = 37, n = 45;
  const auto a64 = random_vec<real>(m * k, rng);
  const auto b64 = random_vec<real>(k * n, rng);
  const auto seed64 = random_vec<real>(m * n, rng);
  const auto a32 = random_vec<real32>(m * k, rng);
  const auto b32 = random_vec<real32>(k * n, rng);
  const auto seed32 = random_vec<real32>(m * n, rng);
  for (const Variant v : {Variant::NN, Variant::TN, Variant::NT}) {
    auto c_naive = seed64;
    auto c_blocked = seed64;
    tensor::gemm::naive(v, m, k, n, a64.data(), b64.data(), c_naive.data());
    tensor::gemm::blocked(v, m, k, n, a64.data(), b64.data(),
                          c_blocked.data());
    EXPECT_TRUE(bits_equal(c_naive, c_blocked))
        << "f64 variant " << static_cast<int>(v);
    auto c32_naive = seed32;
    auto c32_blocked = seed32;
    tensor::gemm::naive(v, m, k, n, a32.data(), b32.data(), c32_naive.data());
    tensor::gemm::blocked(v, m, k, n, a32.data(), b32.data(),
                          c32_blocked.data());
    EXPECT_TRUE(bits_equal(c32_naive, c32_blocked))
        << "f32 variant " << static_cast<int>(v);
  }
}

INSTANTIATE_TEST_SUITE_P(Isas, IsaSweep,
                         ::testing::ValuesIn(tensor::gemm::available_isas()),
                         isa_param_name);

// ---- Dispatch surface -------------------------------------------------------

TEST(KernelDispatch, ReportCompiledAndActiveIsas) {
  // Not an assertion-heavy test: this is the dispatch-detection log CI
  // greps so its output records which kernel variants actually ran.
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon}) {
    std::cout << "[dispatch] " << tensor::gemm::isa_name(isa)
              << " compiled=" << tensor::gemm::isa_compiled(isa)
              << " available=" << tensor::gemm::isa_available(isa) << "\n";
    RecordProperty(tensor::gemm::isa_name(isa),
                   tensor::gemm::isa_available(isa) ? "available"
                                                    : "unavailable");
  }
  std::cout << "[dispatch] active="
            << tensor::gemm::isa_name(tensor::gemm::active_isa()) << "\n";
  EXPECT_TRUE(tensor::gemm::isa_available(Isa::kScalar));
  EXPECT_FALSE(tensor::gemm::available_isas().empty());
}

TEST(KernelDispatch, ForcedDispatchRoundTripsEveryAvailableIsa) {
  KernelEnvGuard guard;
  for (const Isa isa : tensor::gemm::available_isas()) {
    tensor::gemm::set_isa(isa);
    EXPECT_EQ(tensor::gemm::active_isa(), isa);
  }
}

TEST(KernelDispatch, ForcingAnUnavailableIsaThrows) {
  KernelEnvGuard guard;
  for (const Isa isa : {Isa::kAvx2, Isa::kNeon}) {
    if (!tensor::gemm::isa_available(isa)) {
      EXPECT_THROW(tensor::gemm::set_isa(isa), Error)
          << tensor::gemm::isa_name(isa);
    }
  }
}

TEST(KernelDispatch, IsaNamesRoundTripThroughParse) {
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon}) {
    const auto parsed = tensor::gemm::parse_isa(tensor::gemm::isa_name(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(tensor::gemm::parse_isa("avx512").has_value());
  EXPECT_FALSE(tensor::gemm::parse_isa("").has_value());
}

TEST(KernelDiff, RunDispatchHonorsNaiveSwitch) {
  KernelEnvGuard guard;
  EXPECT_FALSE(tensor::gemm::naive_active());
  tensor::gemm::set_naive(true);
  EXPECT_TRUE(tensor::gemm::naive_active());

  common::Rng rng(0x7061u);
  const index_t m = 6, k = 300, n = 10;  // crosses a KC boundary
  const auto a = random_vec<real>(m * k, rng);
  const auto b = random_vec<real>(k * n, rng);
  std::vector<real> via_run(m * n, 0.0);
  tensor::gemm::run(Variant::NN, m, k, n, a.data(), b.data(), via_run.data());
  EXPECT_TRUE(bits_equal(via_run, run_naive(Variant::NN, m, k, n, a, b)));

  tensor::gemm::set_naive(false);
  std::fill(via_run.begin(), via_run.end(), 0.0);
  tensor::gemm::run(Variant::NN, m, k, n, a.data(), b.data(), via_run.data());
  EXPECT_TRUE(bits_equal(via_run, run_blocked(Variant::NN, m, k, n, a, b)));

  // The float entry point honors the same switch.
  const auto a32 = random_vec<real32>(m * k, rng);
  const auto b32 = random_vec<real32>(k * n, rng);
  std::vector<real32> via32(m * n, 0.0f);
  tensor::gemm::set_naive(true);
  tensor::gemm::run(Variant::NN, m, k, n, a32.data(), b32.data(), via32.data());
  EXPECT_TRUE(bits_equal(via32, run_naive(Variant::NN, m, k, n, a32, b32)));
  tensor::gemm::set_naive(false);
  std::fill(via32.begin(), via32.end(), 0.0f);
  tensor::gemm::run(Variant::NN, m, k, n, a32.data(), b32.data(), via32.data());
  EXPECT_TRUE(bits_equal(via32, run_blocked(Variant::NN, m, k, n, a32, b32)));
}

// ---- Layer-level differential runs ------------------------------------------

struct ConvRun {
  tensor::Tensor y, grad_x, grad_w, grad_b;
};

/// One forward+backward through a freshly seeded Conv2d; `naive` selects the
/// oracle GEMM path, everything else (weights, input, grad) is identical.
ConvRun conv_run(bool naive, int threads, index_t stride, index_t pad) {
  tensor::gemm::set_naive(naive);
  runtime::set_num_threads(threads);
  common::Rng init_rng(0xC04Fu);
  nn::Conv2d conv(/*in_channels=*/3, /*out_channels=*/5, /*kernel=*/3, stride,
                  pad, init_rng);
  common::Rng data_rng(0xDA7Au);
  tensor::Tensor x({2, 3, 9, 9});
  for (auto& v : x.data()) v = data_rng.uniform(-1.0, 1.0);
  ConvRun out;
  out.y = conv.forward(x, /*training=*/true);
  tensor::Tensor gy(out.y.shape());
  for (auto& v : gy.data()) v = data_rng.uniform(-1.0, 1.0);
  out.grad_x = conv.backward(gy);
  out.grad_w = conv.weight().grad;
  out.grad_b = conv.bias().grad;
  return out;
}

TEST(KernelDiff, Conv2dForwardBackwardBitIdentical) {
  KernelEnvGuard guard;
  for (const auto& [stride, pad] :
       {std::pair<index_t, index_t>{1, 1}, {2, 0}}) {
    const ConvRun oracle = conv_run(/*naive=*/true, /*threads=*/1, stride, pad);
    for (const int threads : {1, 8}) {
      const ConvRun blocked = conv_run(false, threads, stride, pad);
      EXPECT_TRUE(bits_equal(oracle.y, blocked.y))
          << "forward, stride " << stride << ", " << threads << " threads";
      EXPECT_TRUE(bits_equal(oracle.grad_x, blocked.grad_x))
          << "grad_x, stride " << stride << ", " << threads << " threads";
      EXPECT_TRUE(bits_equal(oracle.grad_w, blocked.grad_w))
          << "grad_w, stride " << stride << ", " << threads << " threads";
      EXPECT_TRUE(bits_equal(oracle.grad_b, blocked.grad_b))
          << "grad_b, stride " << stride << ", " << threads << " threads";
    }
  }
}

struct DenseRun {
  tensor::Tensor y, grad_x, grad_w, grad_b;
};

DenseRun dense_run(bool naive, int threads) {
  tensor::gemm::set_naive(naive);
  runtime::set_num_threads(threads);
  common::Rng init_rng(0xDE45u);
  nn::Dense dense(/*in_features=*/37, /*out_features=*/29, init_rng);
  common::Rng data_rng(0xDA7Bu);
  tensor::Tensor x({17, 37});
  for (auto& v : x.data()) v = data_rng.uniform(-1.0, 1.0);
  DenseRun out;
  out.y = dense.forward(x, /*training=*/true);
  tensor::Tensor gy(out.y.shape());
  for (auto& v : gy.data()) v = data_rng.uniform(-1.0, 1.0);
  out.grad_x = dense.backward(gy);
  out.grad_w = dense.weight().grad;
  out.grad_b = dense.bias().grad;
  return out;
}

TEST(KernelDiff, DenseForwardBackwardBitIdentical) {
  KernelEnvGuard guard;
  const DenseRun oracle = dense_run(/*naive=*/true, /*threads=*/1);
  for (const int threads : {1, 8}) {
    const DenseRun blocked = dense_run(false, threads);
    EXPECT_TRUE(bits_equal(oracle.y, blocked.y)) << threads << " threads";
    EXPECT_TRUE(bits_equal(oracle.grad_x, blocked.grad_x))
        << threads << " threads";
    EXPECT_TRUE(bits_equal(oracle.grad_w, blocked.grad_w))
        << threads << " threads";
    EXPECT_TRUE(bits_equal(oracle.grad_b, blocked.grad_b))
        << threads << " threads";
  }
}

// ---- Workspace arena --------------------------------------------------------

TEST(Workspace, AllocationsAre64ByteAligned) {
  runtime::Workspace ws;
  runtime::Workspace::Scope scope(ws);
  for (const index_t count : {1, 7, 64, 513, 4096}) {
    const real* p = ws.alloc(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u)
        << "count " << count;
  }
}

TEST(Workspace, TypedAllocationsAre64ByteAlignedAndDisjoint) {
  // The fp32 pack panels share the double-granular arena through alloc_as;
  // both the alignment contract and bump disjointness must hold across
  // mixed-type allocations.
  runtime::Workspace ws;
  runtime::Workspace::Scope scope(ws);
  float* f = ws.alloc_as<float>(13);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f) % 64, 0u);
  real* d = ws.alloc(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % 64, 0u);
  float* g = ws.alloc_as<float>(64);
  // 13 floats round up to 7 doubles, then the next alloc bumps from a fresh
  // 64-byte mark — regions never overlap.
  EXPECT_GE(reinterpret_cast<std::uintptr_t>(d),
            reinterpret_cast<std::uintptr_t>(f + 13));
  EXPECT_GE(reinterpret_cast<std::uintptr_t>(g),
            reinterpret_cast<std::uintptr_t>(d + 5));
}

TEST(Workspace, AllocOutsideScopeThrows) {
  runtime::Workspace ws;
  EXPECT_THROW(ws.alloc(8), Error);
  {
    runtime::Workspace::Scope scope(ws);
    EXPECT_NE(ws.alloc(8), nullptr);
  }
  EXPECT_THROW(ws.alloc(8), Error);
}

TEST(Workspace, ScopeRewindReusesStorage) {
  runtime::Workspace ws;
  real* first = nullptr;
  {
    runtime::Workspace::Scope scope(ws);
    first = ws.alloc(100);
  }
  {
    runtime::Workspace::Scope scope(ws);
    // Same single backing block, rewound: the second scope's allocation
    // lands exactly where the first one did.
    EXPECT_EQ(ws.alloc(100), first);
  }
}

TEST(Workspace, NestedScopesRewindToTheirOwnMark) {
  runtime::Workspace ws;
  runtime::Workspace::Scope outer(ws);
  real* a = ws.alloc(16);
  real* inner_ptr = nullptr;
  {
    runtime::Workspace::Scope inner(ws);
    inner_ptr = ws.alloc(16);
    EXPECT_NE(inner_ptr, a);
  }
  // The inner scope's rewind must not release the outer allocation: the next
  // bump continues from `a` + 16, i.e. exactly where the inner scope began.
  EXPECT_EQ(ws.alloc(16), inner_ptr);
}

TEST(Workspace, FragmentedArenaCoalescesToOneBlock) {
  runtime::Workspace ws;
  {
    runtime::Workspace::Scope scope(ws);
    // Two allocations that cannot share the initial block force a second
    // block while the scope is live.
    ws.alloc(600);
    ws.alloc(600);
    EXPECT_GE(ws.block_count(), 2u);
  }
  const index_t cap = ws.capacity();
  EXPECT_GE(cap, 1200u);
  {
    runtime::Workspace::Scope scope(ws);
    // The combined capacity comes back as a single block...
    ws.alloc(600);
    ws.alloc(600);
    EXPECT_EQ(ws.block_count(), 1u);
  }
  // ...and no capacity was lost in the exchange.
  EXPECT_EQ(ws.capacity(), cap);
}

TEST(Workspace, SteadyStateNeverGrows) {
  runtime::Workspace ws;
  auto hot_loop = [&ws] {
    runtime::Workspace::Scope scope(ws);
    ws.alloc(700);
    runtime::Workspace::Scope inner(ws);
    ws.alloc(300);
    ws.alloc(900);
  };
  hot_loop();
  hot_loop();  // second pass settles the coalesced block
  const index_t cap = ws.capacity();
  const index_t blocks = ws.block_count();
  for (int i = 0; i < 16; ++i) hot_loop();
  EXPECT_EQ(ws.capacity(), cap);
  EXPECT_EQ(ws.block_count(), blocks);
}

TEST(Workspace, BlockedGemmLeavesTlsArenaSettled) {
  KernelEnvGuard guard;
  common::Rng rng(0x9E99u);
  const index_t m = 64, k = 300, n = 520;  // crosses KC and NC boundaries
  const auto a = random_vec<real>(m * k, rng);
  const auto b = random_vec<real>(k * n, rng);
  const auto a32 = random_vec<real32>(m * k, rng);
  const auto b32 = random_vec<real32>(k * n, rng);
  std::vector<real> c(m * n, 0.0);
  std::vector<real32> c32(m * n, 0.0f);
  runtime::set_num_threads(1);  // keep all packing on this thread's arena
  // Warm up with both dtypes so the high-water mark covers the mixed case.
  tensor::gemm::blocked(Variant::NN, m, k, n, a.data(), b.data(), c.data());
  tensor::gemm::blocked(Variant::NN, m, k, n, a32.data(), b32.data(),
                        c32.data());
  runtime::Workspace& ws = runtime::Workspace::tls();
  const index_t cap = ws.capacity();
  for (int i = 0; i < 4; ++i) {
    tensor::gemm::blocked(Variant::NN, m, k, n, a.data(), b.data(), c.data());
    tensor::gemm::blocked(Variant::NN, m, k, n, a32.data(), b32.data(),
                          c32.data());
  }
  // Warm-up reached the high-water mark; the hot loop re-uses it verbatim.
  EXPECT_EQ(ws.capacity(), cap);
  EXPECT_LE(ws.block_count(), 1u);
}

}  // namespace
}  // namespace oasis
