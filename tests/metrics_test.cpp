// Metrics tests: PSNR/MSE/SSIM properties, box statistics, accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "metrics/accuracy.h"
#include "metrics/psnr.h"
#include "metrics/stats.h"
#include "nn/dense.h"
#include "nn/models.h"

namespace oasis::metrics {
namespace {

TEST(Psnr, IdenticalImagesHitTheCap) {
  common::Rng rng(1);
  tensor::Tensor img = tensor::Tensor::rand({3, 8, 8}, rng);
  EXPECT_DOUBLE_EQ(psnr(img, img), kPsnrCap);
}

TEST(Psnr, KnownMseValue) {
  tensor::Tensor a({1, 1, 4}, {0.0, 0.0, 0.0, 0.0});
  tensor::Tensor b({1, 1, 4}, {0.1, 0.1, 0.1, 0.1});
  EXPECT_NEAR(mse(a, b), 0.01, 1e-15);
  EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(1.0 / 0.01), 1e-9);  // 20 dB
}

TEST(Psnr, PerfectDoubleReconstructionLandsInPaperBand) {
  // A reconstruction correct to ~1e-7 per pixel (double-precision gradient
  // ratio error) scores in the paper's 130-145 dB "verbatim copy" band.
  common::Rng rng(2);
  tensor::Tensor img = tensor::Tensor::rand({3, 16, 16}, rng);
  tensor::Tensor recon = img;
  common::Rng noise(3);
  for (auto& v : recon.data()) v += noise.normal(0.0, 3e-7);
  const real p = psnr(recon, img);
  EXPECT_GT(p, 125.0);
  EXPECT_LT(p, 155.0);
}

TEST(Psnr, SymmetricInArguments) {
  common::Rng rng(4);
  tensor::Tensor a = tensor::Tensor::rand({3, 8, 8}, rng);
  tensor::Tensor b = tensor::Tensor::rand({3, 8, 8}, rng);
  EXPECT_DOUBLE_EQ(psnr(a, b), psnr(b, a));
}

TEST(Psnr, MonotoneInNoise) {
  common::Rng rng(5);
  tensor::Tensor img = tensor::Tensor::rand({3, 8, 8}, rng);
  real prev = kPsnrCap;
  for (const real sigma : {0.001, 0.01, 0.05, 0.2}) {
    tensor::Tensor noisy = img;
    common::Rng n(6);
    for (auto& v : noisy.data()) v += n.normal(0.0, sigma);
    const real p = psnr(noisy, img);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(Psnr, ShapeMismatchThrows) {
  EXPECT_THROW(mse(tensor::Tensor({3, 4, 4}), tensor::Tensor({3, 5, 5})),
               ShapeError);
}

TEST(Ssim, IdenticalIsOne) {
  common::Rng rng(7);
  tensor::Tensor img = tensor::Tensor::rand({3, 8, 8}, rng);
  EXPECT_NEAR(ssim_global(img, img), 1.0, 1e-12);
}

TEST(Ssim, UncorrelatedIsLow) {
  common::Rng rng(8);
  tensor::Tensor a = tensor::Tensor::rand({3, 16, 16}, rng);
  tensor::Tensor b = tensor::Tensor::rand({3, 16, 16}, rng);
  EXPECT_LT(ssim_global(a, b), 0.6);
}

TEST(Stats, KnownQuartiles) {
  const BoxStats s = box_stats({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(Stats, InterpolatedQuantiles) {
  const BoxStats s = box_stats({0.0, 1.0});
  EXPECT_DOUBLE_EQ(s.q1, 0.25);
  EXPECT_DOUBLE_EQ(s.median, 0.5);
  EXPECT_DOUBLE_EQ(s.q3, 0.75);
}

TEST(Stats, SingleValue) {
  const BoxStats s = box_stats({7.0});
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_EQ(s.count, 1u);
}

TEST(Stats, EmptyThrows) { EXPECT_THROW(box_stats({}), Error); }

TEST(Stats, FormattedRowContainsAllFields) {
  const std::string row = format_box_row("MR", box_stats({1, 2, 3}));
  EXPECT_NE(row.find("MR"), std::string::npos);
  EXPECT_NE(row.find("1.00"), std::string::npos);
  EXPECT_NE(row.find("3.00"), std::string::npos);
  EXPECT_EQ(box_row_header("transform").size(), row.size());
}

TEST(Accuracy, PerfectAndRandomModels) {
  // Construct a dataset and a model that classifies by construction: the
  // linear layer reads a one-hot pixel per class.
  const index_t classes = 4;
  data::InMemoryDataset ds(classes, {1, 2, 2});
  for (index_t c = 0; c < classes; ++c) {
    for (int rep = 0; rep < 3; ++rep) {
      tensor::Tensor img({1, 2, 2});
      img[c] = 1.0;
      ds.push_back({img, c});
    }
  }
  common::Rng rng(9);
  auto model = nn::make_linear_model({1, 2, 2}, classes, rng);
  // Weight = identity → logit c equals pixel c.
  auto* dense = dynamic_cast<nn::Dense*>(&model->at(1));
  ASSERT_NE(dense, nullptr);
  dense->weight().value.fill(0.0);
  for (index_t c = 0; c < classes; ++c) dense->weight().value.at2(c, c) = 1.0;
  dense->bias().value.fill(0.0);
  EXPECT_DOUBLE_EQ(accuracy(*model, ds), 1.0);

  // Anti-diagonal weights misclassify everything.
  dense->weight().value.fill(0.0);
  for (index_t c = 0; c < classes; ++c)
    dense->weight().value.at2(c, classes - 1 - c) = 1.0;
  EXPECT_DOUBLE_EQ(accuracy(*model, ds), 0.0);
}

TEST(Accuracy, TopKIsMonotone) {
  auto cfg = data::synth_imagenet_config();
  cfg.num_classes = 6;
  cfg.train_per_class = 2;
  cfg.test_per_class = 2;
  cfg.height = cfg.width = 16;
  auto ds = data::generate(cfg);
  common::Rng rng(10);
  auto model = nn::make_mlp({3, 16, 16}, {8}, 6, rng);
  const real top1 = top_k_accuracy(*model, ds.test, 1);
  const real top3 = top_k_accuracy(*model, ds.test, 3);
  const real top6 = top_k_accuracy(*model, ds.test, 6);
  EXPECT_LE(top1, top3);
  EXPECT_LE(top3, top6);
  EXPECT_DOUBLE_EQ(top6, 1.0);
}

}  // namespace
}  // namespace oasis::metrics
