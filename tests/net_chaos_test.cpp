// Socket-level chaos harness for the survivable serving path (DESIGN.md §5j).
//
// Each scenario forks a checkpointing net::FlServer and a small federation of
// net::FlClient processes, SIGKILLs the server at an armed kill point
// (mid-accept, mid-frame, post-accept-pre-ack, post-checkpoint), forks a
// replacement that restores from the checkpoint directory and re-binds the
// same port, and lets the clients reconnect through their backoff/resume
// machinery. The verdict is a memcmp: the final model bytes must equal the
// uninterrupted in-process reference, for every kill point at 1 and 8
// threads — which proves no accepted update was double-counted (a resend of
// a folded update must bounce off the duplicate screen) or lost (everything
// past the snapshot is re-requested via session resume).
//
// Fork discipline (tests/crash_test.cpp): the parent pins itself to one
// runtime thread before any fork; children re-raise their own thread count
// after fork. Children report through files and exit codes only.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/manager.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/server.h"
#include "net/client.h"
#include "net/server.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace oasis::net {
namespace {

namespace fs = std::filesystem;

constexpr index_t kClients = 3;
constexpr std::uint64_t kRounds = 3;
constexpr real kLearningRate = 0.1;

fl::ModelFactory chaos_factory() {
  return [] {
    common::Rng rng(0xC4A05);
    return nn::make_mlp({3, 8, 8}, {16}, 4, rng);
  };
}

std::unique_ptr<fl::Client> make_fl_client(std::uint64_t id) {
  data::SynthConfig cfg;
  cfg.num_classes = 4;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 6;
  cfg.test_per_class = 0;
  cfg.seed = 0xC4A05 + id;
  return std::make_unique<fl::Client>(
      id, data::generate(cfg).train, chaos_factory(), /*batch_size=*/4,
      std::make_shared<fl::IdentityPreprocessor>(),
      common::Rng(0xC4A05 ^ (0xC11E + id)));
}

/// Uninterrupted reference: the same rounds driven entirely in process,
/// ascending id order (the unseeded server's round order). Every chaos
/// scenario must land on exactly these bytes.
tensor::ByteBuffer reference_model() {
  fl::Server ref(chaos_factory()(), kLearningRate);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (std::uint64_t id = 0; id < kClients; ++id) {
    clients.push_back(make_fl_client(id));
  }
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    const fl::GlobalModelMessage msg = ref.begin_round();
    std::vector<fl::ClientUpdateMessage> updates;
    for (auto& c : clients) updates.push_back(c->handle_round(msg));
    ref.finish_round(updates, 0);
  }
  return nn::serialize_state(ref.global_model());
}

class Scenario {
 public:
  explicit Scenario(const std::string& tag)
      : root_(fs::path(::testing::TempDir()) / ("oasis_net_chaos_" + tag)) {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~Scenario() { fs::remove_all(root_); }

  [[nodiscard]] std::string path(const std::string& leaf) const {
    return (root_ / leaf).string();
  }

 private:
  fs::path root_;
};

/// tmp + rename so a reader never observes a partial file.
void write_file_whole(const std::string& path, const void* data,
                      std::size_t n) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
  }
  fs::rename(tmp, path);
}

std::string read_file_whole(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct ServerSpec {
  std::string ckpt_dir;
  std::string port_file;
  std::string model_out;
  index_t threads = 1;
  bool resume = false;        // restore from ckpt_dir before listening
  std::uint16_t port = 0;     // 0 = ephemeral; the bound port goes to port_file
  std::optional<FlServer::Event> kill_event;
  int kill_at = 0;            // SIGKILL self on the Nth firing of kill_event
};

[[noreturn]] void run_server_child(const ServerSpec& spec) {
  int code = 1;
  try {
    runtime::set_num_threads(spec.threads);
    fl::Server core(chaos_factory()(), kLearningRate);
    ckpt::CheckpointManager manager(spec.ckpt_dir, /*keep=*/4);
    FlServerConfig cfg;
    cfg.cohort_size = kClients;
    cfg.rounds = kRounds;
    // Deadlines far beyond any recovery latency the harness produces: a
    // scenario must recover every cohort member via resume, never commit a
    // deadline-trimmed round (which would not memcmp the reference).
    cfg.round_timeout_ms = 20'000;
    cfg.idle_timeout_ms = 20'000;
    // A read budget below one update body makes every update span several
    // read passes, so kMidFrame kill points fire deterministically.
    cfg.read_budget_bytes = 4096;
    cfg.checkpoint = &manager;
    cfg.checkpoint_every_accepts = 1;
    FlServer server(core, cfg);
    int seen = 0;
    if (spec.kill_event) {
      server.set_event_hook([&](FlServer::Event event) {
        if (event == *spec.kill_event && ++seen == spec.kill_at) {
          ::raise(SIGKILL);
        }
      });
    }
    if (spec.resume) {
      const std::uint64_t round = server.resume_from();
      const std::string dbg = "restored round " + std::to_string(round) +
                              " served " +
                              std::to_string(server.rounds_served()) + "\n";
      write_file_whole(spec.model_out + ".restore", dbg.data(), dbg.size());
    }
    server.listen("127.0.0.1", spec.port);
    if (spec.port == 0) {
      const std::string text = std::to_string(server.port());
      write_file_whole(spec.port_file, text.data(), text.size());
    }
    server.serve();
    {
      std::stringstream obs;
      for (const auto& [name, value] : obs::Registry::global().counters()) {
        if (value != 0 && name.rfind("net.", 0) == 0) {
          obs << name << " = " << value << "\n";
        }
      }
      const std::string text = obs.str();
      write_file_whole(spec.model_out + ".obs", text.data(), text.size());
    }
    const auto model = nn::serialize_state(core.global_model());
    write_file_whole(spec.model_out, model.data(), model.size());
    code = 0;
  } catch (...) {
    code = 1;
  }
  ::_exit(code);
}

[[noreturn]] void run_client_child(std::uint64_t id,
                                   const std::string& port_file,
                                   index_t threads) {
  // Drop inherited descriptors (gtest plumbing, the sibling server's
  // listener on a respawn race) — files and exit codes are the only report
  // channel.
  for (int fd = 3; fd < 256; ++fd) ::close(fd);
  int code = 1;
  try {
    runtime::set_num_threads(threads);
    std::uint16_t port = 0;
    for (int i = 0; i < 2000 && port == 0; ++i) {
      const std::string text = read_file_whole(port_file);
      if (!text.empty()) {
        port = static_cast<std::uint16_t>(std::stoi(text));
      } else {
        ::usleep(5'000);
      }
    }
    if (port == 0) ::_exit(2);
    auto core = make_fl_client(id);
    FlClientConfig cfg;
    cfg.client_id = id;
    // Ride out the kill→restart window: a dead endpoint costs many quick
    // attempts, and any server contact resets the budget.
    cfg.max_attempts = 2000;
    cfg.backoff_ms = 2;
    cfg.backoff_max_ms = 50;
    cfg.jitter_seed = 0x1A57;
    cfg.io_timeout_ms = 2'000;
    FlClient client(*core, cfg);
    client.run("127.0.0.1", port);
    code = 0;
  } catch (...) {
    code = 1;
  }
  ::_exit(code);
}

void run_kill_scenario(const std::string& tag, FlServer::Event kill_event,
                       int kill_at, index_t threads) {
  // Fork discipline: one runtime thread in the parent before ANY fork —
  // including the reference computation, which would otherwise spin up the
  // worker pool.
  runtime::set_num_threads(1);
  const tensor::ByteBuffer want = reference_model();

  Scenario scenario(tag);
  ServerSpec spec;
  spec.ckpt_dir = scenario.path("ckpt");
  spec.port_file = scenario.path("port");
  spec.model_out = scenario.path("model");
  spec.threads = threads;
  spec.kill_event = kill_event;
  spec.kill_at = kill_at;

  const pid_t server_pid = ::fork();
  ASSERT_GE(server_pid, 0) << "fork failed";
  if (server_pid == 0) run_server_child(spec);

  std::vector<pid_t> client_pids;
  for (std::uint64_t id = 0; id < kClients; ++id) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) run_client_child(id, spec.port_file, threads);
    client_pids.push_back(pid);
  }

  // The armed server must die by SIGKILL at its kill point — an exit means
  // the kill point never fired and the scenario proved nothing.
  int status = 0;
  ASSERT_EQ(::waitpid(server_pid, &status, 0), server_pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "server did not die at the kill point (status " << status << ")";

  // Restart: restore the fold from disk, re-bind the SAME port the clients
  // are hammering with reconnect attempts.
  const std::string port_text = read_file_whole(spec.port_file);
  ASSERT_FALSE(port_text.empty()) << "server died before publishing its port";
  ServerSpec restart = spec;
  restart.kill_event.reset();
  restart.resume = true;
  restart.port = static_cast<std::uint16_t>(std::stoi(port_text));
  const pid_t restart_pid = ::fork();
  ASSERT_GE(restart_pid, 0) << "fork failed";
  if (restart_pid == 0) run_server_child(restart);

  ASSERT_EQ(::waitpid(restart_pid, &status, 0), restart_pid);
  ASSERT_TRUE(WIFEXITED(status)) << "restarted server crashed";
  ASSERT_EQ(WEXITSTATUS(status), 0) << "restarted server failed to finish";
  for (const pid_t pid : client_pids) {
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "client did not reach goodbye";
  }

  const std::string got = read_file_whole(spec.model_out);
  ASSERT_FALSE(got.empty()) << "restarted server wrote no model";
  ASSERT_EQ(got.size(), want.size());
  if (std::memcmp(got.data(), want.data(), want.size()) != 0) {
    write_file_whole("/tmp/chaos_want.bin", want.data(), want.size());
    write_file_whole("/tmp/chaos_got.bin", got.data(), got.size());
  }
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(), want.size()))
      << "killed-and-restarted serving must replay the uninterrupted "
         "federation bit-exactly\n--- restore:\n"
      << read_file_whole(spec.model_out + ".restore") << "--- obs:\n"
      << read_file_whole(spec.model_out + ".obs");
}

// Kill points (FlServer::Event), each at 1 and 8 threads:
//   kUpdateAccepted #2  — mid-accept: one member durably folded, the second
//                         folded in memory but (racing the every-1 cadence)
//                         possibly not yet saved when the SIGKILL lands.
//   kMidFrame #2        — a partial update frame buffered in the decoder.
//   kPreResultSend #1   — post-accept-pre-ack: round committed and
//                         checkpointed, no client told yet (the lost-ack
//                         window the resume handshake exists for).
//   kCheckpointSaved #2 — immediately after a mid-round snapshot landed
//                         (#1 is the generation-0 snapshot in listen()).

TEST(NetChaos, KillMidAcceptOneThread) {
  run_kill_scenario("accept_t1", FlServer::Event::kUpdateAccepted, 2, 1);
}

TEST(NetChaos, KillMidAcceptEightThreads) {
  run_kill_scenario("accept_t8", FlServer::Event::kUpdateAccepted, 2, 8);
}

TEST(NetChaos, KillMidFrameOneThread) {
  run_kill_scenario("frame_t1", FlServer::Event::kMidFrame, 2, 1);
}

TEST(NetChaos, KillMidFrameEightThreads) {
  run_kill_scenario("frame_t8", FlServer::Event::kMidFrame, 2, 8);
}

TEST(NetChaos, KillPostAcceptPreAckOneThread) {
  run_kill_scenario("preack_t1", FlServer::Event::kPreResultSend, 1, 1);
}

TEST(NetChaos, KillPostAcceptPreAckEightThreads) {
  run_kill_scenario("preack_t8", FlServer::Event::kPreResultSend, 1, 8);
}

TEST(NetChaos, KillPostCheckpointOneThread) {
  run_kill_scenario("postckpt_t1", FlServer::Event::kCheckpointSaved, 2, 1);
}

TEST(NetChaos, KillPostCheckpointEightThreads) {
  run_kill_scenario("postckpt_t8", FlServer::Event::kCheckpointSaved, 2, 8);
}

}  // namespace
}  // namespace oasis::net
