// Socket serving layer tests: frame codec round-trips, decoder fuzz sweeps
// (every truncation + seeded bit flips, meant to run under ASan), loopback
// rounds on a virtual clock with bit-identity against the in-process server,
// backpressure/cutover behavior, slowloris deadlines, and a fork-based
// multi-process federation proved byte-identical to fl::Simulation.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "ckpt/manager.h"
#include "common/error.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace oasis::net {
namespace {

data::InMemoryDataset tiny_dataset(index_t n, index_t classes,
                                   std::uint64_t seed) {
  data::SynthConfig cfg;
  cfg.num_classes = classes;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = n;
  cfg.test_per_class = 0;
  cfg.seed = seed;
  return data::generate(cfg).train;
}

fl::ModelFactory tiny_factory(std::uint64_t seed) {
  return [seed] {
    common::Rng rng(seed);
    return nn::make_mlp({3, 8, 8}, {16}, 4, rng);
  };
}

std::unique_ptr<fl::Client> make_client(std::uint64_t id) {
  return std::make_unique<fl::Client>(
      id, tiny_dataset(6, 4, 11 + id), tiny_factory(5), /*batch_size=*/4,
      std::make_shared<fl::IdentityPreprocessor>(), common::Rng(1000 + id));
}

/// A real, valid kUpdate frame (header + body) for the fuzz sweeps.
tensor::ByteBuffer valid_update_frame() {
  fl::ClientUpdateMessage msg;
  msg.round = 3;
  msg.client_id = 7;
  msg.num_examples = 4;
  msg.gradients = tensor::serialize_tensors(
      {tensor::Tensor({2, 3}, {1.0, -2.0, 3.0, -4.0, 5.0, -6.0}),
       tensor::Tensor({2}, {0.5, -0.5})});
  return encode_update(msg);
}

std::uint64_t counter_value(const std::string& name) {
  return obs::counter(name).value();
}

TEST(Frame, RoundTripsEveryType) {
  {
    const auto bytes = encode_hello(Hello{42});
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    const auto f = d.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, FrameType::kHello);
    EXPECT_EQ(decode_hello(f->body).client_id, 42u);
  }
  {
    const auto bytes = encode_welcome(Welcome{9});
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    EXPECT_EQ(decode_welcome(d.next()->body).round, 9u);
  }
  {
    fl::GlobalModelMessage msg;
    msg.round = 5;
    msg.model_state = tensor::serialize_tensors({tensor::Tensor({2}, {1., 2.})});
    const auto bytes = encode_model(msg);
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    const auto back = decode_model(d.next()->body);
    EXPECT_EQ(back.round, 5u);
    EXPECT_EQ(back.model_state, msg.model_state);
  }
  {
    const auto bytes = valid_update_frame();
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    const auto f = d.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, FrameType::kUpdate);
    const auto back = decode_update(f->body);
    EXPECT_EQ(back.round, 3u);
    EXPECT_EQ(back.client_id, 7u);
    EXPECT_EQ(back.num_examples, 4u);
    // The embedded tensor payload survives byte-for-byte (CRC intact).
    EXPECT_NO_THROW((void)tensor::scan_tensors(back.gradients));
  }
  {
    const auto bytes = encode_retry_after(350);
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    EXPECT_EQ(decode_retry_after(d.next()->body), 350u);
  }
  {
    const auto bytes = encode_round_result(RoundResult{12, true});
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    const auto back = decode_round_result(d.next()->body);
    EXPECT_EQ(back.round, 12u);
    EXPECT_TRUE(back.committed);
  }
  {
    const auto bytes = encode_goodbye();
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    EXPECT_EQ(d.next()->type, FrameType::kGoodbye);
    EXPECT_FALSE(d.mid_frame());
  }
}

TEST(Frame, HandshakeRejectsBadMagicAndVersion) {
  auto hello = encode_hello(Hello{1});
  // Body layout: magic u32 | version u32 | id u64, after the 5-byte header.
  auto bad_magic = hello;
  bad_magic[kFrameHeaderBytes] ^= 0xFF;
  auto bad_version = hello;
  bad_version[kFrameHeaderBytes + 4] ^= 0xFF;
  const auto body_of = [](const tensor::ByteBuffer& frame) {
    FrameDecoder d;
    d.feed(frame.data(), frame.size());
    return d.next()->body;
  };
  EXPECT_THROW((void)decode_hello(body_of(bad_magic)), NetError);
  EXPECT_THROW((void)decode_hello(body_of(bad_version)), NetError);
  try {
    (void)decode_hello(body_of(bad_magic));
    FAIL() << "bad magic must throw";
  } catch (const NetError& e) {
    EXPECT_EQ(e.reason(), NetError::Reason::kBadMagic);
  }
}

TEST(FrameDecoder, ReassemblesFromSingleByteFeeds) {
  // Two frames back to back, delivered one byte at a time — the decoder must
  // produce exactly both, in order, regardless of feed chunking.
  auto stream = encode_hello(Hello{5});
  const auto second = encode_retry_after(99);
  stream.insert(stream.end(), second.begin(), second.end());
  FrameDecoder d;
  std::vector<Frame> frames;
  for (const auto byte : stream) {
    d.feed(&byte, 1);
    while (auto f = d.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(decode_retry_after(frames[1].body), 99u);
  EXPECT_FALSE(d.mid_frame());
}

TEST(FrameDecoder, OversizedLengthThrowsBeforeBodyArrives) {
  // Header advertising a body one byte past the budget: the decoder must
  // throw from the header alone, before any body bytes exist to buffer.
  FrameDecoder d(/*max_body_bytes=*/1024);
  const std::uint32_t len = 1025;
  std::uint8_t header[kFrameHeaderBytes];
  header[0] = static_cast<std::uint8_t>(len & 0xFF);
  header[1] = static_cast<std::uint8_t>((len >> 8) & 0xFF);
  header[2] = static_cast<std::uint8_t>((len >> 16) & 0xFF);
  header[3] = static_cast<std::uint8_t>((len >> 24) & 0xFF);
  header[4] = static_cast<std::uint8_t>(FrameType::kUpdate);
  d.feed(header, sizeof(header));
  try {
    (void)d.next();
    FAIL() << "oversized length must throw";
  } catch (const NetError& e) {
    EXPECT_EQ(e.reason(), NetError::Reason::kOversizedFrame);
  }
}

TEST(FrameDecoder, UnknownTypeByteThrows) {
  std::uint8_t header[kFrameHeaderBytes] = {0, 0, 0, 0, 0xEE};
  FrameDecoder d;
  d.feed(header, sizeof(header));
  try {
    (void)d.next();
    FAIL() << "unknown frame type must throw";
  } catch (const NetError& e) {
    EXPECT_EQ(e.reason(), NetError::Reason::kBadFrameType);
  }
}

// --- Satellite: decoder fuzz sweep ------------------------------------------

TEST(FrameFuzz, EveryTruncationOfAValidFrameWaitsCleanly) {
  // A prefix of a valid frame is always just an incomplete stream: the
  // decoder reports "need more bytes" (and mid_frame() for the close-time
  // truncation check) — never a crash, never a bogus frame.
  const auto frame = valid_update_frame();
  for (std::size_t len = 0; len < frame.size(); ++len) {
    FrameDecoder d;
    d.feed(frame.data(), len);
    EXPECT_FALSE(d.next().has_value()) << "prefix length " << len;
    EXPECT_EQ(d.mid_frame(), len > 0) << "prefix length " << len;
  }
  // The full frame still decodes.
  FrameDecoder d;
  d.feed(frame.data(), frame.size());
  EXPECT_TRUE(d.next().has_value());
}

TEST(FrameFuzz, SeededBitFlipsNeverCrashTheDecodePath) {
  // 200 seeded single-bit flips anywhere in a valid frame. Every outcome
  // must be a typed error (NetError from the frame layer, Serialization/
  // ChecksumError from the tensor payload) or a clean decode — the sweep's
  // real assertion is "no crash / no UB", which the ASan stage enforces.
  const auto frame = valid_update_frame();
  common::Rng rng(0x0A5150F1);
  for (int trial = 0; trial < 200; ++trial) {
    auto damaged = frame;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(damaged.size()) - 1));
    const auto bit = static_cast<int>(rng.uniform_int(0, 7));
    damaged[pos] ^= static_cast<std::uint8_t>(1u << bit);
    try {
      FrameDecoder d;
      d.feed(damaged.data(), damaged.size());
      while (auto f = d.next()) {
        if (f->type == FrameType::kUpdate) {
          const auto msg = decode_update(f->body);
          // The CRC32C trailer inside the tensor payload is what the
          // server-side validation pipeline checks; damaged bytes must be
          // caught here, not crash the scan.
          (void)tensor::scan_tensors(msg.gradients);
        }
      }
    } catch (const Error&) {
      // Typed rejection is a pass.
    }
  }
}

// --- Loopback rounds on a virtual clock -------------------------------------

/// Steps server + clients on a shared virtual millisecond clock until the
/// serving schedule completes. Returns false on iteration blow-up (a hang).
bool drive_loopback(FlServer& server, std::vector<FlClient*> clients,
                    std::uint64_t& t, int max_iters = 200000) {
  for (int i = 0; i < max_iters; ++i) {
    server.step(0);
    for (auto* c : clients) {
      if (!c->finished()) c->step(0);
    }
    ++t;
    if (server.finished()) {
      // Let clients consume their goodbyes.
      for (auto* c : clients) {
        for (int k = 0; k < 64 && !c->finished(); ++k) c->step(0);
      }
      return true;
    }
  }
  // Stuck: dump the counter fingerprint so the failure is diagnosable.
  for (const auto& [name, value] : obs::Registry::global().counters()) {
    if (value != 0 && name.rfind("net.", 0) == 0) {
      std::cerr << "  " << name << " = " << value << "\n";
    }
  }
  return false;
}

TEST(NetRound, LoopbackFederationMatchesInProcessServerBitExactly) {
  constexpr index_t kClients = 3;
  constexpr std::uint64_t kRounds = 2;

  // Reference: the same rounds driven entirely in process, collecting
  // updates in ascending id order (the unseeded server's round order).
  fl::Server ref(tiny_factory(21)(), /*learning_rate=*/0.1);
  std::vector<std::unique_ptr<fl::Client>> ref_clients;
  for (index_t i = 0; i < kClients; ++i) ref_clients.push_back(make_client(i));
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    const fl::GlobalModelMessage msg = ref.begin_round();
    std::vector<fl::ClientUpdateMessage> updates;
    for (auto& c : ref_clients) updates.push_back(c->handle_round(msg));
    ref.finish_round(updates, 0);
  }
  const auto want = nn::serialize_state(ref.global_model());

  // Served: same construction, every update crossing a real TCP socket.
  fl::Server core(tiny_factory(21)(), /*learning_rate=*/0.1);
  FlServerConfig cfg;
  cfg.cohort_size = kClients;
  cfg.rounds = kRounds;
  std::uint64_t t = 0;
  const TimeSource clock = [&t] { return t; };
  FlServer server(core, cfg, clock);
  server.listen("127.0.0.1", 0);

  std::vector<std::unique_ptr<fl::Client>> cores;
  std::vector<std::unique_ptr<FlClient>> clients;
  for (index_t i = 0; i < kClients; ++i) {
    cores.push_back(make_client(i));
    FlClientConfig ccfg;
    ccfg.client_id = i;
    clients.push_back(std::make_unique<FlClient>(*cores[i], ccfg, clock));
    clients[i]->connect("127.0.0.1", server.port());
  }
  ASSERT_TRUE(drive_loopback(
      server, {clients[0].get(), clients[1].get(), clients[2].get()}, t));

  EXPECT_EQ(server.rounds_served(), kRounds);
  EXPECT_EQ(core.round(), kRounds);
  const auto got = nn::serialize_state(core.global_model());
  EXPECT_EQ(got, want) << "socket serving must preserve bit-identity";
  for (const auto& c : clients) {
    EXPECT_EQ(c->rounds_completed(), kRounds);
    EXPECT_EQ(c->rounds_committed(), kRounds);
  }
  EXPECT_EQ(server.round_latencies_ms().size(), kRounds);
}

// --- Satellite: graceful cutover + backpressure -----------------------------

TEST(NetRound, MidRoundArrivalBouncesThenJoinsNextRoundBitExactly) {
  // Reference: round 1 aggregates clients {0, 1}; round 2 aggregates {0, 2}
  // (ascending id order both times — the fairness rule seats the bounced
  // newcomer 2 and the id-tiebreak picks 0 over 1).
  fl::Server ref(tiny_factory(33)(), /*learning_rate=*/0.1);
  std::vector<std::unique_ptr<fl::Client>> ref_clients;
  for (index_t i = 0; i < 3; ++i) ref_clients.push_back(make_client(i));
  {
    const fl::GlobalModelMessage msg = ref.begin_round();
    std::vector<fl::ClientUpdateMessage> updates;
    updates.push_back(ref_clients[0]->handle_round(msg));
    updates.push_back(ref_clients[1]->handle_round(msg));
    ref.finish_round(updates, 0);
  }
  {
    const fl::GlobalModelMessage msg = ref.begin_round();
    std::vector<fl::ClientUpdateMessage> updates;
    updates.push_back(ref_clients[0]->handle_round(msg));
    updates.push_back(ref_clients[2]->handle_round(msg));
    ref.finish_round(updates, 0);
  }
  const auto want = nn::serialize_state(ref.global_model());

  fl::Server core(tiny_factory(33)(), /*learning_rate=*/0.1);
  FlServerConfig cfg;
  cfg.cohort_size = 2;
  cfg.rounds = 2;
  cfg.retry_after_ms = 2;
  cfg.admission_window_ms = 20;  // cutover → reconnect gap for the newcomer
  std::uint64_t t = 0;
  const TimeSource clock = [&t] { return t; };
  FlServer server(core, cfg, clock);
  server.listen("127.0.0.1", 0);

  std::vector<std::unique_ptr<fl::Client>> cores;
  std::vector<std::unique_ptr<FlClient>> clients;
  for (index_t i = 0; i < 3; ++i) {
    cores.push_back(make_client(i));
    FlClientConfig ccfg;
    ccfg.client_id = i;
    clients.push_back(std::make_unique<FlClient>(*cores[i], ccfg, clock));
  }
  clients[0]->connect("127.0.0.1", server.port());
  clients[1]->connect("127.0.0.1", server.port());

  // Step until round 1 is dispatched to {0, 1} — breaking BEFORE the cohort
  // clients get to read the model, so the round is still open (collecting)
  // when the newcomer's hello reaches the server.
  const std::uint64_t started_before = counter_value("net.round.started");
  for (int i = 0; i < 10000; ++i) {
    server.step(0);
    if (counter_value("net.round.started") > started_before) break;
    clients[0]->step(0);
    clients[1]->step(0);
    ++t;
  }
  ASSERT_GT(counter_value("net.round.started"), started_before);

  // ...then client 2 arrives mid-round: it must be turned away with a
  // retry-after frame, reconnect, and participate in round 2.
  clients[2]->connect("127.0.0.1", server.port());
  ASSERT_TRUE(drive_loopback(
      server, {clients[0].get(), clients[1].get(), clients[2].get()}, t));

  EXPECT_GE(clients[2]->retry_after_bounces(), 1u);
  EXPECT_EQ(clients[2]->rounds_completed(), 1u);
  EXPECT_EQ(clients[0]->rounds_completed(), 2u);
  EXPECT_EQ(clients[1]->rounds_completed(), 1u);
  const auto got = nn::serialize_state(core.global_model());
  EXPECT_EQ(got, want)
      << "backpressure + cutover must not perturb the aggregation";
}

// --- Abuse bounds -----------------------------------------------------------

TEST(NetServer, SlowlorisPartialHelloIsReapedByIdleDeadline) {
  fl::Server core(tiny_factory(44)(), /*learning_rate=*/0.1);
  FlServerConfig cfg;
  cfg.cohort_size = 1;
  cfg.rounds = 1;
  cfg.idle_timeout_ms = 50;
  std::uint64_t t = 0;
  FlServer server(core, cfg, [&t] { return t; });
  server.listen("127.0.0.1", 0);

  const std::uint64_t reaped_before = counter_value("net.conn.idle_timeout");
  {
    // A peer that sends 3 bytes of hello and then stalls forever.
    Socket slow = tcp_connect("127.0.0.1", server.port());
    const auto hello = encode_hello(Hello{9});
    ASSERT_EQ(write_some(slow, hello.data(), 3), 3);
    for (int i = 0; i < 200 && server.connection_count() == 0; ++i) {
      server.step(0);
      ++t;
    }
    ASSERT_EQ(server.connection_count(), 1u);
    t += cfg.idle_timeout_ms + 1;
    server.step(0);
    EXPECT_EQ(server.connection_count(), 0u);
    EXPECT_EQ(counter_value("net.conn.idle_timeout"), reaped_before + 1);
  }

  // The server survives the abuse: an honest client still completes a round.
  auto honest_core = make_client(0);
  FlClientConfig ccfg;
  ccfg.client_id = 0;
  FlClient honest(*honest_core, ccfg, [&t] { return t; });
  honest.connect("127.0.0.1", server.port());
  ASSERT_TRUE(drive_loopback(server, {&honest}, t));
  EXPECT_EQ(honest.rounds_completed(), 1u);
}

TEST(NetServer, OversizedFramePrefixSeversOnlyThatConnection) {
  fl::Server core(tiny_factory(55)(), /*learning_rate=*/0.1);
  FlServerConfig cfg;
  cfg.cohort_size = 1;
  cfg.rounds = 1;
  cfg.max_frame_bytes = 1 << 20;  // fits real updates; rejects the 16 MiB lie
  std::uint64_t t = 0;
  FlServer server(core, cfg, [&t] { return t; });
  server.listen("127.0.0.1", 0);

  const std::uint64_t errs_before =
      counter_value("net.frame.error.oversized_frame");
  {
    Socket hostile = tcp_connect("127.0.0.1", server.port());
    // 16 MiB length prefix against a 4 KiB budget.
    const std::uint32_t len = 16u << 20;
    std::uint8_t header[kFrameHeaderBytes];
    header[0] = static_cast<std::uint8_t>(len & 0xFF);
    header[1] = static_cast<std::uint8_t>((len >> 8) & 0xFF);
    header[2] = static_cast<std::uint8_t>((len >> 16) & 0xFF);
    header[3] = static_cast<std::uint8_t>((len >> 24) & 0xFF);
    header[4] = static_cast<std::uint8_t>(FrameType::kHello);
    ASSERT_EQ(write_some(hostile, header, sizeof(header)),
              static_cast<long>(sizeof(header)));
    for (int i = 0; i < 200 && counter_value("net.frame.error.oversized_frame")
                                   == errs_before; ++i) {
      server.step(0);
      ++t;
    }
    EXPECT_EQ(counter_value("net.frame.error.oversized_frame"),
              errs_before + 1);
    EXPECT_EQ(server.connection_count(), 0u);
  }

  auto honest_core = make_client(0);
  FlClientConfig ccfg;
  ccfg.client_id = 0;
  FlClient honest(*honest_core, ccfg, [&t] { return t; });
  honest.connect("127.0.0.1", server.port());
  ASSERT_TRUE(drive_loopback(server, {&honest}, t));
  EXPECT_EQ(honest.rounds_completed(), 1u);
}

// --- Multi-process equivalence ----------------------------------------------

TEST(NetMultiProcess, ForkedFederationMatchesSimulationBitExactly) {
  constexpr index_t kClients = 3;
  constexpr index_t kRounds = 2;
  constexpr std::uint64_t kSelectionSeed = 3;

  // Fork discipline (tests/crash_test.cpp): no worker threads across fork.
  runtime::set_num_threads(1);

  // Reference: the in-process round engine with its seeded M-of-N selection
  // (full population → per-round permutation of {0, 1, 2}).
  auto ref_server =
      std::make_unique<fl::Server>(tiny_factory(66)(), /*learning_rate=*/0.1);
  std::vector<std::unique_ptr<fl::Client>> ref_clients;
  for (index_t i = 0; i < kClients; ++i) ref_clients.push_back(make_client(i));
  fl::SimulationConfig sim_cfg{/*clients_per_round=*/0, kSelectionSeed};
  fl::Simulation sim(std::move(ref_server), std::move(ref_clients), sim_cfg);
  sim.run(kRounds);
  const auto want = nn::serialize_state(sim.server().global_model());

  // Served: identical federation, every client a forked process.
  fl::Server core(tiny_factory(66)(), /*learning_rate=*/0.1);
  FlServerConfig cfg;
  cfg.cohort_size = kClients;
  cfg.rounds = kRounds;
  cfg.selection_seed = kSelectionSeed;
  FlServer server(core, cfg);
  server.listen("127.0.0.1", 0);
  const std::uint16_t port = server.port();

  std::vector<pid_t> children;
  for (index_t i = 0; i < kClients; ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: no gtest machinery, exit code is the only report channel.
      // Close inherited fds (notably the parent's listener — keeping it
      // would hold the port open past the parent's shutdown).
      for (int fd = 3; fd < 256; ++fd) ::close(fd);
      int code = 1;
      try {
        auto child_core = make_client(i);
        FlClientConfig ccfg;
        ccfg.client_id = i;
        FlClient client(*child_core, ccfg);
        client.run("127.0.0.1", port);
        code = client.rounds_completed() == kRounds ? 0 : 3;
      } catch (...) {
        code = 1;
      }
      ::_exit(code);
    }
    children.push_back(pid);
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (server.step(20)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "forked federation did not finish";
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  EXPECT_EQ(server.rounds_served(), static_cast<std::uint64_t>(kRounds));
  const auto got = nn::serialize_state(core.global_model());
  EXPECT_EQ(got, want)
      << "multi-process serving must replay the simulation bit-exactly";
}

// --- Survivable serving (DESIGN.md §5j) -------------------------------------

TEST(Frame, ResumeVocabularyRoundTrips) {
  {
    const auto bytes =
        encode_resume(Resume{/*client_id=*/17, /*last_round=*/4,
                             /*has_update=*/true, /*update_round=*/3});
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    const auto f = d.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, FrameType::kResume);
    const Resume back = decode_resume(f->body);
    EXPECT_EQ(back.client_id, 17u);
    EXPECT_EQ(back.last_round, 4u);
    EXPECT_TRUE(back.has_update);
    EXPECT_EQ(back.update_round, 3u);
  }
  for (const auto status :
       {ResumeStatus::kNone, ResumeStatus::kPending, ResumeStatus::kAccepted,
        ResumeStatus::kExpired}) {
    const auto bytes = encode_resume_ack(ResumeAck{8, status});
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    const ResumeAck back = decode_resume_ack(d.next()->body);
    EXPECT_EQ(back.round, 8u);
    EXPECT_EQ(back.status, status);
  }
  {
    const auto bytes = encode_heartbeat();
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    EXPECT_EQ(d.next()->type, FrameType::kHeartbeat);
  }
  {
    const auto bytes = encode_version_reject(VersionReject{kProtocolVersion});
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    EXPECT_EQ(decode_version_reject(d.next()->body).supported_version,
              kProtocolVersion);
  }
  {
    // A resume from a future protocol dialect is a typed version error.
    auto bad_version = encode_resume(Resume{1, 0, false, 0});
    bad_version[kFrameHeaderBytes + 4] ^= 0xFF;
    FrameDecoder d;
    d.feed(bad_version.data(), bad_version.size());
    try {
      (void)decode_resume(d.next()->body);
      FAIL() << "bad resume version must throw";
    } catch (const NetError& e) {
      EXPECT_EQ(e.reason(), NetError::Reason::kBadVersion);
    }
  }
}

TEST(FrameFuzz, ResumeVocabularySurvivesTruncationAndBitFlips) {
  // The §5j frames join the same decoder sweep contract as the original
  // vocabulary: every prefix waits cleanly, every seeded single-bit flip is
  // either a clean decode or a typed error — never a crash (ASan enforces).
  const std::vector<tensor::ByteBuffer> frames = {
      encode_resume(Resume{17, 4, true, 3}),
      encode_resume_ack(ResumeAck{8, ResumeStatus::kPending}),
      encode_heartbeat(),
      encode_version_reject(VersionReject{kProtocolVersion}),
  };
  for (const auto& frame : frames) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      FrameDecoder d;
      d.feed(frame.data(), len);
      EXPECT_FALSE(d.next().has_value()) << "prefix length " << len;
      EXPECT_EQ(d.mid_frame(), len > 0) << "prefix length " << len;
    }
  }
  common::Rng rng(0x5E55107);
  for (int trial = 0; trial < 200; ++trial) {
    auto damaged = frames[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frames.size()) - 1))];
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(damaged.size()) - 1));
    damaged[pos] ^= static_cast<std::uint8_t>(
        1u << static_cast<int>(rng.uniform_int(0, 7)));
    try {
      FrameDecoder d;
      d.feed(damaged.data(), damaged.size());
      while (auto f = d.next()) {
        switch (f->type) {
          case FrameType::kResume:
            (void)decode_resume(f->body);
            break;
          case FrameType::kResumeAck:
            // Also covers the out-of-range status byte rejection.
            (void)decode_resume_ack(f->body);
            break;
          case FrameType::kVersionReject:
            (void)decode_version_reject(f->body);
            break;
          default:
            break;
        }
      }
    } catch (const Error&) {
      // Typed rejection is a pass.
    }
  }
}

// Satellite: every send path must surface a peer-closed socket as a typed
// NetError{kIo}, never as SIGPIPE process death (MSG_NOSIGNAL/SO_NOSIGPIPE
// audit of src/net/socket.cpp). The test IS the act of surviving the write.
TEST(NetSocket, WriteIntoPeerClosedSocketIsTypedErrorNotSigpipe) {
  Socket listener = tcp_listen("127.0.0.1", 0);
  const std::uint16_t port = local_port(listener);
  Socket writer = tcp_connect("127.0.0.1", port);
  Socket reader;
  for (int i = 0; i < 1000 && !reader.valid(); ++i) {
    reader = tcp_accept(listener);
  }
  ASSERT_TRUE(reader.valid());
  reader.close();  // peer is gone; the writer does not know yet

  // First writes land in kernel buffers; keep pushing until the RST turns
  // into EPIPE/ECONNRESET. Unhandled SIGPIPE would kill the process here.
  std::vector<std::uint8_t> chunk(64 * 1024, 0xAB);
  bool threw = false;
  for (int i = 0; i < 10000 && !threw; ++i) {
    try {
      (void)write_some(writer, chunk.data(), chunk.size());
    } catch (const NetError& e) {
      EXPECT_EQ(e.reason(), NetError::Reason::kIo);
      threw = true;
    }
  }
  EXPECT_TRUE(threw) << "peer-closed write never surfaced an error";
}

// Satellite: version negotiation. An unknown protocol version in the opening
// handshake is answered with a typed kVersionReject frame carrying the
// server's supported version, then an orderly close — not a silent drop.
TEST(NetServer, UnknownHelloVersionGetsRejectFrameThenClose) {
  fl::Server core(tiny_factory(88)(), /*learning_rate=*/0.1);
  FlServerConfig cfg;
  cfg.cohort_size = 1;
  cfg.rounds = 1;
  std::uint64_t t = 0;
  FlServer server(core, cfg, [&t] { return t; });
  server.listen("127.0.0.1", 0);

  const std::uint64_t rejected_before = counter_value("net.version.rejected");
  Socket probe = tcp_connect("127.0.0.1", server.port());
  auto hello = encode_hello(Hello{3});
  hello[kFrameHeaderBytes + 4] ^= 0xFF;  // bump the version field
  ASSERT_EQ(write_some(probe, hello.data(), hello.size()),
            static_cast<long>(hello.size()));

  FrameDecoder d;
  std::uint8_t buf[4096];
  bool closed = false;
  std::vector<Frame> got;
  for (int i = 0; i < 2000 && !closed; ++i) {
    server.step(0);
    ++t;
    const long n = read_some(probe, buf, sizeof(buf));
    if (n < 0) {
      closed = true;
    } else if (n > 0) {
      d.feed(buf, static_cast<std::size_t>(n));
      while (auto f = d.next()) got.push_back(std::move(*f));
    }
  }
  ASSERT_TRUE(closed) << "server must close after the reject";
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].type, FrameType::kVersionReject);
  EXPECT_EQ(decode_version_reject(got[0].body).supported_version,
            kProtocolVersion);
  EXPECT_EQ(counter_value("net.version.rejected"), rejected_before + 1);
}

TEST(NetClient, VersionRejectFromServerIsFatalNotRetried) {
  Socket listener = tcp_listen("127.0.0.1", 0);
  const std::uint16_t port = local_port(listener);

  auto core = make_client(0);
  FlClientConfig ccfg;
  ccfg.client_id = 0;
  std::uint64_t t = 0;
  FlClient client(*core, ccfg, [&t] { return t; });
  client.connect("127.0.0.1", port);

  Socket conn;
  bool threw = false;
  for (int i = 0; i < 5000 && !threw; ++i) {
    if (!conn.valid()) {
      conn = tcp_accept(listener);
      if (conn.valid()) {
        const auto reject =
            encode_version_reject(VersionReject{kProtocolVersion});
        ASSERT_EQ(write_some(conn, reject.data(), reject.size()),
                  static_cast<long>(reject.size()));
      }
    }
    try {
      client.step(0);
    } catch (const NetError& e) {
      EXPECT_EQ(e.reason(), NetError::Reason::kBadVersion);
      threw = true;
    }
    ++t;
  }
  EXPECT_TRUE(threw) << "client must treat kVersionReject as fatal";
}

// Satellite: liveness. A dead-but-open socket (connected, never a byte) must
// trip the client's no-progress deadline into a reconnect, not a hang.
TEST(NetClient, StalledServerTripsIdleDeadlineIntoReconnect) {
  Socket listener = tcp_listen("127.0.0.1", 0);  // accepts; never speaks
  const std::uint16_t port = local_port(listener);

  auto core = make_client(0);
  FlClientConfig ccfg;
  ccfg.client_id = 0;
  ccfg.io_timeout_ms = 40;
  ccfg.backoff_ms = 5;
  std::uint64_t t = 0;
  FlClient client(*core, ccfg, [&t] { return t; });
  client.connect("127.0.0.1", port);
  for (int i = 0; i < 600; ++i) {
    (void)tcp_accept(listener);  // drain the backlog, say nothing
    client.step(0);
    t += 10;
    if (client.retries() >= 2) break;
  }
  EXPECT_GE(client.retries(), 2u)
      << "a silent endpoint must be abandoned and redialed";
}

// Satellite: the inverse — a slow but ALIVE server heartbeats, so the same
// idle deadline never fires and the session stays up with zero reconnects.
TEST(NetClient, HeartbeatingServerHoldsSessionWithoutReconnect) {
  fl::Server core(tiny_factory(99)(), /*learning_rate=*/0.1);
  FlServerConfig cfg;
  cfg.cohort_size = 2;  // one parked client cannot start a round: a stall
  cfg.rounds = 1;
  cfg.heartbeat_ms = 10;
  std::uint64_t t = 0;
  const TimeSource clock = [&t] { return t; };
  FlServer server(core, cfg, clock);
  server.listen("127.0.0.1", 0);

  auto core0 = make_client(0);
  FlClientConfig ccfg;
  ccfg.client_id = 0;
  ccfg.io_timeout_ms = 40;   // << the 1000 ms stall below
  ccfg.heartbeat_ms = 10;    // and the client heartbeats back
  FlClient parked(*core0, ccfg, clock);
  parked.connect("127.0.0.1", server.port());

  const std::uint64_t hb_in_before = counter_value("net.heartbeat.received");
  for (int i = 0; i < 1000; ++i) {  // a 1000 ms round-less stall
    server.step(0);
    parked.step(0);
    ++t;
  }
  EXPECT_EQ(parked.retries(), 0u)
      << "heartbeats must keep the idle deadline from tripping";
  // ...and the client's own heartbeats reached the server (liveness is
  // symmetric: the server's idle deadline tolerates client stalls too).
  EXPECT_GT(counter_value("net.heartbeat.received"), hb_in_before);

  // The stalled federation is still fully operational: seat a second client
  // and the round completes.
  auto core1 = make_client(1);
  FlClientConfig ccfg1;
  ccfg1.client_id = 1;
  FlClient second(*core1, ccfg1, clock);
  second.connect("127.0.0.1", server.port());
  ASSERT_TRUE(drive_loopback(server, {&parked, &second}, t));
  EXPECT_EQ(parked.rounds_completed(), 1u);
  EXPECT_EQ(second.rounds_completed(), 1u);
}

// Satellite: the reconnect schedule is exponential, capped, and — jittered or
// not — a pure function of (config, client id, attempt): replayable.
TEST(NetClient, BackoffScheduleIsExponentialCappedAndReproducible) {
  // A port with nothing behind it: bind, read the number, release it.
  std::uint16_t dead_port = 0;
  {
    Socket probe = tcp_listen("127.0.0.1", 0);
    dead_port = local_port(probe);
  }

  const auto exhaust = [&](std::optional<std::uint64_t> jitter_seed,
                           std::uint64_t id) {
    auto core = make_client(id);
    FlClientConfig ccfg;
    ccfg.client_id = id;
    ccfg.max_attempts = 6;
    ccfg.backoff_ms = 4;
    ccfg.backoff_max_ms = 32;
    ccfg.jitter_seed = jitter_seed;
    std::uint64_t t = 0;
    FlClient client(*core, ccfg, [&t] { return t; });
    client.connect("127.0.0.1", dead_port);
    for (int i = 0; i < 1000; ++i) {
      try {
        client.step(0);
      } catch (const NetError& e) {
        EXPECT_EQ(e.reason(), NetError::Reason::kRetryExhausted);
        return client.backoff_ms_total();
      }
      t += 100;  // jump past any scheduled wait
    }
    ADD_FAILURE() << "retry budget never exhausted";
    return std::uint64_t{0};
  };

  // No jitter: waits are exactly 4, 8, 16, 32(cap), 32(cap) = 92 ms.
  EXPECT_EQ(exhaust(std::nullopt, 0), 92u);
  // Jitter adds at most wait/2 per attempt and is replayable per (seed, id).
  const std::uint64_t jittered = exhaust(0xD15C0, 0);
  EXPECT_GE(jittered, 92u);
  EXPECT_LE(jittered, 92u + 46u);
  EXPECT_EQ(exhaust(0xD15C0, 0), jittered);
}

// Satellite: checkpoint-write failure degrades to in-memory serving — the
// round completes bit-exactly, the loss of durability is observable, the
// process never aborts.
TEST(NetServer, CheckpointWriteFailureDegradesToInMemory) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "oasis_net_degraded";
  fs::remove_all(root);
  fs::create_directories(root);
  const std::string blocker = (root / "notadir").string();
  {
    std::ofstream out(blocker);  // a FILE where the manager wants a directory
    out << "x";
  }

  fl::Server ref(tiny_factory(111)(), /*learning_rate=*/0.1);
  auto ref_client = make_client(0);
  {
    const fl::GlobalModelMessage msg = ref.begin_round();
    std::vector<fl::ClientUpdateMessage> updates;
    updates.push_back(ref_client->handle_round(msg));
    ref.finish_round(updates, 0);
  }
  const auto want = nn::serialize_state(ref.global_model());

  ckpt::CheckpointManager manager(blocker, /*keep=*/2);
  fl::Server core(tiny_factory(111)(), /*learning_rate=*/0.1);
  FlServerConfig cfg;
  cfg.cohort_size = 1;
  cfg.rounds = 1;
  cfg.checkpoint = &manager;
  cfg.checkpoint_every_accepts = 1;
  std::uint64_t t = 0;
  const TimeSource clock = [&t] { return t; };
  FlServer server(core, cfg, clock);
  const std::uint64_t degraded_before = counter_value("net.ckpt.degraded");
  server.listen("127.0.0.1", 0);  // even the generation-0 save fails

  auto core0 = make_client(0);
  FlClientConfig ccfg;
  ccfg.client_id = 0;
  FlClient client(*core0, ccfg, clock);
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(drive_loopback(server, {&client}, t));

  EXPECT_TRUE(server.checkpoint_degraded());
  EXPECT_GT(counter_value("net.ckpt.degraded"), degraded_before);
  EXPECT_EQ(nn::serialize_state(core.global_model()), want)
      << "degraded mode must not perturb the aggregation";
  fs::remove_all(root);
}

// Tentpole, deterministically: destroy the server at the first mid-round
// fold checkpoint — with two further accepted updates still parked behind
// the fold frontier — rebuild from disk on the same port, and finish the
// schedule bit-exactly. This is the in-process, virtual-clock twin of the
// fork/SIGKILL chaos harness (tests/net_chaos_test.cpp), pinning the exact
// snapshot semantics: only FOLDED updates are in the duplicate screen, so
// the pending members' cached resends are re-accepted, never bounced.
TEST(NetRestart, MidRoundRestartWithPendingAcceptsIsBitExact) {
  namespace fs = std::filesystem;
  constexpr index_t kClients = 3;
  constexpr std::uint64_t kRounds = 2;
  const fs::path root =
      fs::path(::testing::TempDir()) / "oasis_net_restart";
  fs::remove_all(root);
  fs::create_directories(root);

  fl::Server ref(tiny_factory(77)(), /*learning_rate=*/0.1);
  std::vector<std::unique_ptr<fl::Client>> ref_clients;
  for (index_t i = 0; i < kClients; ++i) ref_clients.push_back(make_client(i));
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    const fl::GlobalModelMessage msg = ref.begin_round();
    std::vector<fl::ClientUpdateMessage> updates;
    for (auto& c : ref_clients) updates.push_back(c->handle_round(msg));
    ref.finish_round(updates, 0);
  }
  const auto want = nn::serialize_state(ref.global_model());

  ckpt::CheckpointManager manager((root / "ckpt").string(), /*keep=*/4);
  FlServerConfig cfg;
  cfg.cohort_size = kClients;
  cfg.rounds = kRounds;
  cfg.checkpoint = &manager;
  cfg.checkpoint_every_accepts = 1;
  std::uint64_t t = 0;
  const TimeSource clock = [&t] { return t; };

  auto core = std::make_unique<fl::Server>(tiny_factory(77)(),
                                           /*learning_rate=*/0.1);
  auto server = std::make_unique<FlServer>(*core, cfg, clock);
  server->listen("127.0.0.1", 0);
  const std::uint16_t port = server->port();
  // Installed AFTER listen so the generation-0 snapshot does not trip it:
  // the next save is the first mid-round fold checkpoint.
  struct Kill {};
  server->set_event_hook([](FlServer::Event e) {
    if (e == FlServer::Event::kCheckpointSaved) throw Kill{};
  });

  std::vector<std::unique_ptr<fl::Client>> cores;
  std::vector<std::unique_ptr<FlClient>> clients;
  for (index_t i = 0; i < kClients; ++i) {
    cores.push_back(make_client(i));
    FlClientConfig ccfg;
    ccfg.client_id = i;
    ccfg.backoff_ms = 5;
    clients.push_back(std::make_unique<FlClient>(*cores[i], ccfg, clock));
    clients[i]->connect("127.0.0.1", port);
  }

  // Seat the cohort and dispatch round 0, holding every client back from
  // reading the model (the MidRoundArrival choreography).
  const std::uint64_t started_before = counter_value("net.round.started");
  for (int i = 0; i < 10000; ++i) {
    server->step(0);
    if (counter_value("net.round.started") > started_before) break;
    for (auto& c : clients) c->step(0);
    ++t;
  }
  ASSERT_GT(counter_value("net.round.started"), started_before);

  // Clients 1 and 2 train and deliver FIRST: both are screened-accepted but
  // parked behind the fold frontier, which waits on client 0.
  const std::uint64_t updates_before = counter_value("net.update.received");
  for (int i = 0; i < 10000; ++i) {
    server->step(0);
    clients[1]->step(0);
    clients[2]->step(0);
    ++t;
    if (counter_value("net.update.received") >= updates_before + 2) break;
  }
  ASSERT_EQ(counter_value("net.update.received"), updates_before + 2);

  // Client 0 delivers; its fold triggers the first checkpoint — and the
  // "crash", with clients 1 and 2 accepted-but-unfolded.
  bool killed = false;
  for (int i = 0; i < 10000 && !killed; ++i) {
    clients[0]->step(0);
    try {
      server->step(0);
    } catch (const Kill&) {
      killed = true;
    }
    ++t;
  }
  ASSERT_TRUE(killed);
  server.reset();
  core.reset();

  // Restart: fresh core, state from disk, same port. The restored round is
  // still round 0, mid-flight.
  auto core2 = std::make_unique<fl::Server>(tiny_factory(77)(),
                                            /*learning_rate=*/0.1);
  FlServer server2(*core2, cfg, clock);
  EXPECT_EQ(server2.resume_from(), 0u);
  server2.listen("127.0.0.1", port);

  ASSERT_TRUE(drive_loopback(
      server2, {clients[0].get(), clients[1].get(), clients[2].get()}, t));
  EXPECT_EQ(server2.rounds_served(), kRounds);
  EXPECT_EQ(nn::serialize_state(core2->global_model()), want)
      << "mid-round restart must preserve bit-identity";
  // The recovery used the session machinery: everyone resumed, and the two
  // unfolded members answered from their caches instead of retraining.
  std::uint64_t resumed = 0;
  for (const auto& c : clients) resumed += c->sessions_resumed();
  EXPECT_GE(resumed, 3u);
  EXPECT_GE(clients[1]->cached_resends() + clients[2]->cached_resends(), 2u);
  fs::remove_all(root);
}

}  // namespace
}  // namespace oasis::net
