// NN library tests: analytic gradients vs finite differences for every
// layer, loss correctness, optimizer behaviour, container surgery, state
// snapshot round-trips.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/loss.h"
#include "nn/scheduler.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace oasis::nn {
namespace {

constexpr real kGradTol = 2e-4;

TEST(Dense, ForwardKnownValues) {
  common::Rng rng(1);
  Dense layer(2, 2, rng);
  layer.weight().value = tensor::Tensor({2, 2}, {1.0, 2.0, 3.0, 4.0});
  layer.bias().value = tensor::Tensor({2}, {0.5, -0.5});
  tensor::Tensor x({1, 2}, {1.0, 1.0});
  tensor::Tensor y = layer.forward(x, true);
  // y = x·Wᵀ + b; row0 of W = [1,2] -> 3 + 0.5
  EXPECT_DOUBLE_EQ(y.at2(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(y.at2(0, 1), 6.5);
}

TEST(Dense, RejectsBadInput) {
  common::Rng rng(1);
  Dense layer(4, 3, rng);
  EXPECT_THROW(layer.forward(tensor::Tensor({2, 5}), true), Error);
}

TEST(Dense, GradientsMatchFiniteDifferences) {
  common::Rng rng(2);
  Dense layer(6, 4, rng);
  tensor::Tensor x = tensor::Tensor::randn({3, 6}, rng);
  EXPECT_LT(testutil::check_gradients(layer, x, rng), kGradTol);
}

TEST(Dense, GradientsAccumulateAcrossBackwardCalls) {
  common::Rng rng(3);
  Dense layer(3, 2, rng);
  tensor::Tensor x = tensor::Tensor::randn({2, 3}, rng);
  tensor::Tensor g = tensor::Tensor::ones({2, 2});
  layer.forward(x, true);
  layer.backward(g);
  const tensor::Tensor once = layer.weight().grad;
  layer.forward(x, true);
  layer.backward(g);
  EXPECT_TRUE(tensor::allclose(layer.weight().grad, once + once));
  layer.zero_grad();
  EXPECT_DOUBLE_EQ(layer.weight().grad.max(), 0.0);
}

TEST(Dense, BatchSummedBiasGradient) {
  // The bias gradient must equal the sum of per-row output grads — the exact
  // quantity the attacks divide by.
  common::Rng rng(4);
  Dense layer(3, 2, rng);
  tensor::Tensor x = tensor::Tensor::randn({5, 3}, rng);
  tensor::Tensor g = tensor::Tensor::randn({5, 2}, rng);
  layer.forward(x, true);
  layer.backward(g);
  EXPECT_TRUE(tensor::allclose(layer.bias().grad, tensor::sum_rows(g)));
}

TEST(Activations, ReluGradient) {
  common::Rng rng(5);
  ReLU layer;
  // Offset inputs away from the kink to keep finite differences valid.
  tensor::Tensor x = tensor::Tensor::randn({4, 7}, rng);
  for (auto& v : x.data()) {
    if (std::abs(v) < 0.05) v += 0.2;
  }
  EXPECT_LT(testutil::check_gradients(layer, x, rng), kGradTol);
}

TEST(Activations, TanhGradient) {
  common::Rng rng(6);
  Tanh layer;
  tensor::Tensor x = tensor::Tensor::randn({3, 5}, rng);
  EXPECT_LT(testutil::check_gradients(layer, x, rng), kGradTol);
}

TEST(Activations, SigmoidGradient) {
  common::Rng rng(7);
  Sigmoid layer;
  tensor::Tensor x = tensor::Tensor::randn({3, 5}, rng);
  EXPECT_LT(testutil::check_gradients(layer, x, rng), kGradTol);
}

TEST(Conv2d, MatchesDirectConvolution) {
  common::Rng rng(8);
  Conv2d conv(1, 1, 3, 1, 0, rng);
  conv.weight().value =
      tensor::Tensor({1, 9}, {0, 0, 0, 0, 1, 0, 0, 0, 0});  // identity tap
  conv.bias().value = tensor::Tensor({1}, {0.25});
  tensor::Tensor x = tensor::Tensor::randn({1, 1, 5, 5}, rng);
  tensor::Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 1, 3, 3}));
  // Identity kernel picks the center pixel.
  EXPECT_NEAR(y.at4(0, 0, 1, 1), x.at4(0, 0, 2, 2) + 0.25, 1e-12);
}

TEST(Conv2d, GradientsMatchFiniteDifferences) {
  common::Rng rng(9);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  tensor::Tensor x = tensor::Tensor::randn({2, 2, 5, 5}, rng);
  EXPECT_LT(testutil::check_gradients(conv, x, rng), kGradTol);
}

TEST(Conv2d, StridedGradients) {
  common::Rng rng(10);
  Conv2d conv(1, 2, 3, 2, 1, rng);
  tensor::Tensor x = tensor::Tensor::randn({2, 1, 6, 6}, rng);
  EXPECT_LT(testutil::check_gradients(conv, x, rng), kGradTol);
}

TEST(Pooling, MaxPoolForwardAndGradient) {
  common::Rng rng(11);
  MaxPool2d pool(2, 2);
  tensor::Tensor x({1, 1, 2, 2}, {1.0, 4.0, 2.0, 3.0});
  tensor::Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  tensor::Tensor g({1, 1, 1, 1}, {2.5});
  tensor::Tensor gx = pool.backward(g);
  EXPECT_DOUBLE_EQ(gx[1], 2.5);  // flows to the argmax only
  EXPECT_DOUBLE_EQ(gx[0], 0.0);

  // Finite differences on random data (distinct values avoid ties).
  tensor::Tensor xr = tensor::Tensor::randn({2, 2, 4, 4}, rng);
  EXPECT_LT(testutil::check_gradients(pool, xr, rng), kGradTol);
}

TEST(Pooling, AvgPoolGradient) {
  common::Rng rng(12);
  AvgPool2d pool(2, 2);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 4, 4}, rng);
  EXPECT_LT(testutil::check_gradients(pool, x, rng), kGradTol);
}

TEST(Pooling, GlobalAvgPoolGradient) {
  common::Rng rng(13);
  GlobalAvgPool pool;
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 4, 4}, rng);
  EXPECT_LT(testutil::check_gradients(pool, x, rng), kGradTol);
}

TEST(Pooling, OverlappingMaxPoolGradient) {
  // kernel > stride: windows overlap, so one input pixel can be the argmax
  // of several windows and must accumulate gradient from each.
  common::Rng rng(31);
  MaxPool2d pool(3, 2);
  tensor::Tensor x = tensor::Tensor::randn({2, 2, 7, 7}, rng);
  EXPECT_LT(testutil::check_gradients(pool, x, rng), kGradTol);
}

TEST(Pooling, OverlappingAvgPoolGradient) {
  common::Rng rng(32);
  AvgPool2d pool(3, 2);
  tensor::Tensor x = tensor::Tensor::randn({2, 2, 7, 7}, rng);
  EXPECT_LT(testutil::check_gradients(pool, x, rng), kGradTol);
}

TEST(Pooling, FlattenRoundTrip) {
  common::Rng rng(14);
  Flatten flatten;
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 4, 5}, rng);
  tensor::Tensor y = flatten.forward(x, true);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 60}));
  tensor::Tensor gx = flatten.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_TRUE(tensor::allclose(gx, x));
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  common::Rng rng(15);
  BatchNorm2d bn(3);
  tensor::Tensor x = tensor::Tensor::randn({4, 3, 5, 5}, rng, 2.0, 3.0);
  tensor::Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1.
  const index_t hw = 25;
  for (index_t c = 0; c < 3; ++c) {
    real m = 0.0, v = 0.0;
    for (index_t n = 0; n < 4; ++n)
      for (index_t p = 0; p < hw; ++p) m += y.data()[(n * 3 + c) * hw + p];
    m /= 100.0;
    for (index_t n = 0; n < 4; ++n)
      for (index_t p = 0; p < hw; ++p) {
        const real d = y.data()[(n * 3 + c) * hw + p] - m;
        v += d * d;
      }
    v /= 100.0;
    EXPECT_NEAR(m, 0.0, 1e-9);
    EXPECT_NEAR(v, 1.0, 1e-3);
  }
}

TEST(BatchNorm, GradientsMatchFiniteDifferences) {
  common::Rng rng(16);
  BatchNorm2d bn(2);
  tensor::Tensor x = tensor::Tensor::randn({3, 2, 3, 3}, rng);
  EXPECT_LT(testutil::check_gradients(bn, x, rng), kGradTol);
}

TEST(BatchNorm, EvalModeGradientsMatchFiniteDifferences) {
  // Eval mode normalizes with the (frozen) running statistics, which makes
  // the layer affine in x — the backward pass must use those same stats,
  // not the batch stats. A few training passes first so the running stats
  // are non-trivial.
  common::Rng rng(33);
  BatchNorm2d bn(2);
  for (int i = 0; i < 5; ++i) {
    bn.forward(tensor::Tensor::randn({4, 2, 3, 3}, rng, 1.5, 2.0), true);
  }
  tensor::Tensor x = tensor::Tensor::randn({3, 2, 3, 3}, rng);
  EXPECT_LT(testutil::check_gradients(bn, x, rng, /*training=*/false),
            kGradTol);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  common::Rng rng(17);
  BatchNorm2d bn(1);
  tensor::Tensor x = tensor::Tensor::randn({8, 1, 4, 4}, rng, 5.0, 2.0);
  for (int i = 0; i < 50; ++i) bn.forward(x, true);
  tensor::Tensor y = bn.forward(x, false);
  // After many EMA updates on the same batch, eval output ≈ train output.
  tensor::Tensor yt = bn.forward(x, true);
  EXPECT_LT(tensor::max_abs_diff(y, yt), 0.05);
}

TEST(Residual, GradientsMatchFiniteDifferences) {
  common::Rng rng(18);
  ResidualBlock block(2, 4, 2, rng);  // projection path
  tensor::Tensor x = tensor::Tensor::randn({2, 2, 6, 6}, rng);
  EXPECT_LT(testutil::check_gradients(block, x, rng), 5e-4);
}

TEST(Residual, IdentityShortcutGradients) {
  common::Rng rng(19);
  ResidualBlock block(3, 3, 1, rng);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 4, 4}, rng);
  EXPECT_LT(testutil::check_gradients(block, x, rng), 5e-4);
}

TEST(Residual, EvalModeGradients) {
  // The block's inner BatchNorms switch to running stats in eval mode; the
  // composed backward must stay consistent with that forward.
  common::Rng rng(34);
  ResidualBlock block(2, 2, 1, rng);
  for (int i = 0; i < 5; ++i) {
    block.forward(tensor::Tensor::randn({4, 2, 4, 4}, rng), true);
  }
  tensor::Tensor x = tensor::Tensor::randn({2, 2, 4, 4}, rng);
  EXPECT_LT(testutil::check_gradients(block, x, rng, /*training=*/false),
            5e-4);
}

TEST(Sequential, ForwardBackwardComposition) {
  common::Rng rng(20);
  Sequential net;
  net.emplace<Dense>(5, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(8, 3, rng);
  tensor::Tensor x = tensor::Tensor::randn({4, 5}, rng);
  EXPECT_LT(testutil::check_gradients(net, x, rng), kGradTol);
  EXPECT_EQ(net.parameters().size(), 4u);
}

TEST(Sequential, InsertPlacesModuleInOrder) {
  common::Rng rng(21);
  Sequential net;
  net.emplace<Dense>(4, 4, rng);
  net.emplace<Dense>(4, 2, rng);
  net.insert(1, std::make_unique<ReLU>());
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.at(1).name(), "ReLU");
  EXPECT_THROW(net.insert(9, std::make_unique<ReLU>()), Error);
}

TEST(Loss, SoftmaxCrossEntropyKnownValue) {
  // Uniform logits over k classes: loss = log(k), grad = (1/k - onehot)/B.
  tensor::Tensor logits({2, 4});
  SoftmaxCrossEntropy loss_fn;
  const std::vector<index_t> labels{1, 3};
  const LossResult r = loss_fn.compute(logits, labels);
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-12);
  EXPECT_NEAR(r.grad_logits.at2(0, 1), (0.25 - 1.0) / 2.0, 1e-12);
  EXPECT_NEAR(r.grad_logits.at2(0, 0), 0.25 / 2.0, 1e-12);
}

TEST(Loss, SoftmaxCrossEntropyGradientNumeric) {
  common::Rng rng(22);
  tensor::Tensor logits = tensor::Tensor::randn({3, 5}, rng);
  const std::vector<index_t> labels{0, 2, 4};
  SoftmaxCrossEntropy loss_fn;
  const LossResult r = loss_fn.compute(logits, labels);
  real max_err = 0.0;
  for (index_t i = 0; i < logits.size(); ++i) {
    const real numeric = testutil::numeric_derivative(
        [&] { return loss_fn.compute(logits, labels).loss; },
        logits.data()[i]);
    max_err = std::max(max_err, std::abs(numeric - r.grad_logits[i]));
  }
  EXPECT_LT(max_err, 1e-6);
}

TEST(Loss, SigmoidBceGradientNumeric) {
  common::Rng rng(23);
  tensor::Tensor logits = tensor::Tensor::randn({2, 4}, rng, 0.0, 2.0);
  const std::vector<index_t> labels{3, 0};
  SigmoidBce loss_fn;
  const LossResult r = loss_fn.compute(logits, labels);
  real max_err = 0.0;
  for (index_t i = 0; i < logits.size(); ++i) {
    const real numeric = testutil::numeric_derivative(
        [&] { return loss_fn.compute(logits, labels).loss; },
        logits.data()[i]);
    max_err = std::max(max_err, std::abs(numeric - r.grad_logits[i]));
  }
  EXPECT_LT(max_err, 1e-6);
}

TEST(Loss, SumVsMeanReductionScale) {
  common::Rng rng(24);
  tensor::Tensor logits = tensor::Tensor::randn({4, 3}, rng);
  const std::vector<index_t> labels{0, 1, 2, 0};
  const LossResult mean =
      SoftmaxCrossEntropy(Reduction::kMean).compute(logits, labels);
  const LossResult sum =
      SoftmaxCrossEntropy(Reduction::kSum).compute(logits, labels);
  EXPECT_NEAR(sum.loss, mean.loss * 4.0, 1e-9);
  EXPECT_TRUE(tensor::allclose(sum.grad_logits, mean.grad_logits * 4.0));
}

TEST(Loss, MseKnownValue) {
  tensor::Tensor pred({2}, {1.0, 3.0});
  tensor::Tensor target({2}, {0.0, 1.0});
  const LossResult r = MseLoss().compute(pred, target);
  EXPECT_NEAR(r.loss, (1.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(r.grad_logits[1], 2.0 * 2.0 / 2.0, 1e-12);
}

TEST(Optimizer, SgdStepMatchesFormula) {
  common::Rng rng(25);
  Dense layer(2, 2, rng);
  const tensor::Tensor w0 = layer.weight().value;
  layer.weight().grad.fill(1.0);
  layer.bias().grad.fill(2.0);
  Sgd opt(layer.parameters(), {.lr = 0.1, .momentum = 0.0,
                               .weight_decay = 0.0});
  opt.step();
  for (index_t i = 0; i < w0.size(); ++i) {
    EXPECT_NEAR(layer.weight().value[i], w0[i] - 0.1, 1e-12);
  }
  EXPECT_NEAR(layer.bias().value[0], -0.2, 1e-12);
}

TEST(Optimizer, SgdMomentumAccumulates) {
  common::Rng rng(26);
  Dense layer(1, 1, rng);
  layer.weight().value.fill(0.0);
  Sgd opt(layer.parameters(), {.lr = 1.0, .momentum = 0.5,
                               .weight_decay = 0.0});
  layer.weight().grad.fill(1.0);
  opt.step();  // v=1, w=-1
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(layer.weight().value[0], -2.5, 1e-12);
}

TEST(Optimizer, AdamFirstStepIsLrSignedGradient) {
  common::Rng rng(27);
  Dense layer(2, 1, rng);
  const tensor::Tensor w0 = layer.weight().value;
  layer.weight().grad = tensor::Tensor({1, 2}, {0.3, -0.7});
  Adam opt(layer.parameters(), {.lr = 0.01});
  opt.step();
  // Bias-corrected first Adam step ≈ lr * sign(g).
  EXPECT_NEAR(layer.weight().value[0], w0[0] - 0.01, 1e-5);
  EXPECT_NEAR(layer.weight().value[1], w0[1] + 0.01, 1e-5);
}

TEST(Optimizer, AdamReducesLossOnQuadratic) {
  // Minimize ||Wx - t||² for fixed x, t — loss must fall monotonically-ish.
  common::Rng rng(28);
  Dense layer(4, 4, rng);
  Dense teacher(4, 4, rng);  // target is realizable: t = teacher(x)
  tensor::Tensor x = tensor::Tensor::randn({8, 4}, rng);
  tensor::Tensor t = teacher.forward(x, false);
  MseLoss loss_fn;
  Adam opt(layer.parameters(), {.lr = 0.05});
  real first = 0.0, last = 0.0;
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    const tensor::Tensor y = layer.forward(x, true);
    const LossResult r = loss_fn.compute(y, t);
    layer.backward(r.grad_logits);
    opt.step();
    if (i == 0) first = r.loss;
    last = r.loss;
  }
  EXPECT_LT(last, first * 0.05);
}

TEST(ModelIo, SnapshotRoundTrip) {
  common::Rng rng(29);
  const ImageSpec spec{3, 8, 8};
  auto a = make_mini_resnet(spec, 5, rng, 4);
  auto b = make_mini_resnet(spec, 5, rng, 4);  // different init
  const auto state = snapshot_state(*a);
  load_state(*b, state);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 8, 8}, rng);
  // Identical state ⇒ identical eval outputs.
  EXPECT_TRUE(tensor::allclose(b->forward(x, false), a->forward(x, false)));
}

TEST(ModelIo, SerializedStateRoundTrip) {
  common::Rng rng(30);
  const ImageSpec spec{3, 8, 8};
  auto a = make_mini_convnet(spec, 4, rng, 4);
  auto b = make_mini_convnet(spec, 4, rng, 4);
  deserialize_state(*b, serialize_state(*a));
  tensor::Tensor x = tensor::Tensor::randn({1, 3, 8, 8}, rng);
  EXPECT_TRUE(tensor::allclose(b->forward(x, false), a->forward(x, false)));
}

TEST(ModelIo, LoadStateRejectsMismatch) {
  common::Rng rng(31);
  const ImageSpec spec{3, 8, 8};
  auto a = make_mlp(spec, {16}, 4, rng);
  auto state = snapshot_state(*a);
  state.pop_back();
  EXPECT_THROW(load_state(*a, state), Error);
}

TEST(Models, AttackHostShapes) {
  common::Rng rng(32);
  const ImageSpec spec{3, 16, 16};
  auto host = make_attack_host(spec, 50, 10, rng);
  tensor::Tensor x = tensor::Tensor::randn({4, 3, 16, 16}, rng);
  tensor::Tensor y = host->forward(x, true);
  EXPECT_EQ(y.shape(), (tensor::Shape{4, 10}));
  // The malicious slot is the first Dense with d inputs and n outputs.
  auto* dense = dynamic_cast<Dense*>(&host->at(kMaliciousDenseIndex));
  ASSERT_NE(dense, nullptr);
  EXPECT_EQ(dense->in_features(), spec.pixels());
  EXPECT_EQ(dense->out_features(), 50u);
}

TEST(Models, MiniResnetTrainEvalModes) {
  common::Rng rng(33);
  const ImageSpec spec{3, 16, 16};
  auto net = make_mini_resnet(spec, 7, rng, 4);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 16, 16}, rng);
  tensor::Tensor y = net->forward(x, true);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 7}));
  // Eval mode runs (running stats) without throwing and gives finite values.
  tensor::Tensor ye = net->forward(x, false);
  for (const auto v : ye.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout layer(0.5, common::Rng(1));
  common::Rng rng(2);
  tensor::Tensor x = tensor::Tensor::randn({4, 8}, rng);
  EXPECT_TRUE(layer.forward(x, false) == x);
  EXPECT_TRUE(layer.backward(x) == x);
}

TEST(Dropout, TrainModeMasksAndScales) {
  const real p = 0.3;
  Dropout layer(p, common::Rng(3));
  common::Rng rng(4);
  tensor::Tensor x = tensor::Tensor::full({1, 10000}, 1.0);
  tensor::Tensor y = layer.forward(x, true);
  index_t zeros = 0;
  const real keep_scale = 1.0 / (1.0 - p);
  for (const auto v : y.data()) {
    if (v == 0.0) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, keep_scale, 1e-12);  // survivors scaled exactly
    }
  }
  EXPECT_NEAR(static_cast<real>(zeros) / 10000.0, p, 0.02);
  // Expected value preserved.
  EXPECT_NEAR(y.mean(), 1.0, 0.03);
  // Backward uses the same mask.
  tensor::Tensor g = tensor::Tensor::full({1, 10000}, 1.0);
  tensor::Tensor gx = layer.backward(g);
  for (index_t i = 0; i < gx.size(); ++i) {
    EXPECT_EQ(gx[i] == 0.0, y[i] == 0.0);
  }
}

TEST(Dropout, RejectsInvalidProbability) {
  EXPECT_THROW(Dropout(1.0, common::Rng(5)), Error);
  EXPECT_THROW(Dropout(-0.1, common::Rng(5)), Error);
}

TEST(Scheduler, StepDecay) {
  StepDecayLr sched(1.0, 10, 0.5);
  EXPECT_DOUBLE_EQ(sched.lr(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.lr(9), 1.0);
  EXPECT_DOUBLE_EQ(sched.lr(10), 0.5);
  EXPECT_DOUBLE_EQ(sched.lr(25), 0.25);
}

TEST(Scheduler, CosineAnnealing) {
  CosineAnnealingLr sched(1.0, 100, 0.1);
  EXPECT_DOUBLE_EQ(sched.lr(0), 1.0);
  EXPECT_NEAR(sched.lr(50), 0.55, 1e-12);  // midpoint = (1+0.1)/2
  EXPECT_NEAR(sched.lr(100), 0.1, 1e-12);
  EXPECT_NEAR(sched.lr(500), 0.1, 1e-12);  // clamps past the horizon
}

TEST(Scheduler, OptimizerLrIsAdjustable) {
  common::Rng rng(6);
  Dense layer(2, 2, rng);
  Adam opt(layer.parameters(), {.lr = 1e-3});
  EXPECT_DOUBLE_EQ(opt.lr(), 1e-3);
  opt.set_lr(5e-4);
  EXPECT_DOUBLE_EQ(opt.lr(), 5e-4);
}

class MlpGradientSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(MlpGradientSweep, EndToEndGradients) {
  common::Rng rng(40 + GetParam());
  const ImageSpec spec{1, 4, 4};
  auto net = make_mlp(spec, {GetParam()}, 3, rng);
  tensor::Tensor x = tensor::Tensor::randn({3, 1, 4, 4}, rng);
  EXPECT_LT(testutil::check_gradients(*net, x, rng), kGradTol);
}

INSTANTIATE_TEST_SUITE_P(HiddenWidths, MlpGradientSweep,
                         ::testing::Values(1, 4, 16, 33));

}  // namespace
}  // namespace oasis::nn
