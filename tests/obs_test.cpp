// oasis::obs unit tests: registry semantics, histogram bucket math, span
// nesting/exclusive-time invariants, and the determinism contract — the JSON
// dump (timings excluded) must be byte-identical at 1 and 8 threads for a
// fixed parallel workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace oasis {
namespace {

/// Every test starts from a clean global registry. Instruments created by
/// other tests survive (by design) but are zeroed, so tests assert on the
/// instruments they own, never on global emptiness.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Registry::global().reset(); }
  void TearDown() override { obs::Registry::global().reset(); }
};

// ---- Registry semantics -----------------------------------------------------

TEST_F(ObsTest, CounterCreateOnceReturnsSameInstrument) {
  obs::Counter& a = obs::counter("test.registry.counter");
  obs::Counter& b = obs::counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST_F(ObsTest, TypedLookupMismatchThrowsConfigError) {
  obs::counter("test.registry.kinds");
  EXPECT_THROW(obs::gauge("test.registry.kinds"), ConfigError);
  EXPECT_THROW(obs::histogram("test.registry.kinds"), ConfigError);

  obs::gauge("test.registry.kinds.gauge");
  EXPECT_THROW(obs::counter("test.registry.kinds.gauge"), ConfigError);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsReferencesValid) {
  obs::Counter& c = obs::counter("test.registry.reset");
  obs::Gauge& g = obs::gauge("test.registry.reset.gauge");
  c.add(10);
  g.set(2.5);
  obs::Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  c.add(1);  // the cached reference still points at the live instrument
  EXPECT_EQ(obs::counter("test.registry.reset").value(), 1u);
}

TEST_F(ObsTest, RegistrySnapshotsAreNameSorted) {
  obs::counter("test.sort.zz").add(1);
  obs::counter("test.sort.aa").add(1);
  obs::counter("test.sort.mm").add(1);
  const auto counters = obs::Registry::global().counters();
  for (std::size_t i = 1; i < counters.size(); ++i) {
    EXPECT_LT(counters[i - 1].first, counters[i].first);
  }
}

TEST_F(ObsTest, GaugeIsLastWriteWins) {
  obs::Gauge& g = obs::gauge("test.gauge.lww");
  g.set(1.0);
  g.set(-3.25);
  EXPECT_EQ(g.value(), -3.25);
}

// ---- Histogram bucket math --------------------------------------------------

TEST_F(ObsTest, HistogramBucketOfUsesInclusiveUpperBounds) {
  obs::Histogram& h = obs::histogram("test.hist.bounds", {1.0, 10.0, 100.0});
  // v <= boundary lands in that bucket; above every boundary -> overflow.
  EXPECT_EQ(h.bucket_of(0.0), 0u);
  EXPECT_EQ(h.bucket_of(1.0), 0u);   // inclusive upper bound
  EXPECT_EQ(h.bucket_of(1.5), 1u);
  EXPECT_EQ(h.bucket_of(10.0), 1u);
  EXPECT_EQ(h.bucket_of(99.9), 2u);
  EXPECT_EQ(h.bucket_of(100.0), 2u);
  EXPECT_EQ(h.bucket_of(100.1), 3u);  // overflow bucket
}

TEST_F(ObsTest, HistogramSnapshotAggregates) {
  obs::Histogram& h = obs::histogram("test.hist.agg", {2.0, 4.0});
  for (const double v : {1.0, 2.0, 3.0, 5.0, 9.0}) h.record(v);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 20.0);  // integer-valued samples: double sum is exact
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 9.0);
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_EQ(s.buckets[0], 2u);  // 1, 2  (<= 2)
  EXPECT_EQ(s.buckets[1], 1u);  // 3     (<= 4)
  EXPECT_EQ(s.buckets[2], 2u);  // 5, 9  (overflow)
}

TEST_F(ObsTest, HistogramBucketCountsMatchBucketOf) {
  obs::Histogram& h = obs::histogram("test.hist.cross", {3.0, 7.0, 20.0});
  std::vector<std::uint64_t> expected(4, 0);
  for (int v = 0; v <= 30; ++v) {
    h.record(static_cast<double>(v));
    expected[h.bucket_of(static_cast<double>(v))] += 1;
  }
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), expected.size());
  for (std::size_t b = 0; b < expected.size(); ++b) {
    EXPECT_EQ(s.buckets[b], expected[b]) << "bucket " << b;
  }
  EXPECT_EQ(s.count, 31u);
  EXPECT_EQ(s.sum, 465.0);
}

TEST_F(ObsTest, ExponentialBoundariesArePowersOfTwo) {
  const auto b = obs::exponential_boundaries(8);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(b.front(), 1.0);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_EQ(b[i], 2.0 * b[i - 1]);
}

TEST_F(ObsTest, HistogramRejectsUnsortedBoundaries) {
  EXPECT_THROW(obs::Histogram({3.0, 1.0, 2.0}), Error);
}

// ---- Span nesting and exclusive time ----------------------------------------

TEST_F(ObsTest, SpansNestIntoSlashPaths) {
  {
    const obs::Span outer("test.span.outer");
    {
      const obs::Span inner("inner");
      { const obs::Span leaf("leaf"); }
    }
    { const obs::Span inner("inner"); }
  }
  const auto spans = obs::Registry::global().spans();
  auto count_of = [&](const std::string& path) -> std::uint64_t {
    for (const auto& [p, s] : spans) {
      if (p == path) return s.count;
    }
    return 0;
  };
  EXPECT_EQ(count_of("test.span.outer"), 1u);
  EXPECT_EQ(count_of("test.span.outer/inner"), 2u);
  EXPECT_EQ(count_of("test.span.outer/inner/leaf"), 1u);
}

TEST_F(ObsTest, RootSpanIgnoresOpenParent) {
  {
    const obs::Span outer("test.span.ctx");
    const obs::Span detached("test.span.detached", obs::Span::kRoot);
    const obs::Span child("child");  // nests under the innermost open span
  }
  const auto spans = obs::Registry::global().spans();
  bool saw_detached = false, saw_child_under_detached = false;
  for (const auto& [p, s] : spans) {
    if (p == "test.span.detached") saw_detached = true;
    if (p == "test.span.detached/child") saw_child_under_detached = true;
  }
  EXPECT_TRUE(saw_detached);
  // kRoot still participates in the open-span stack, so children of the
  // detached span nest under its (root) path.
  EXPECT_TRUE(saw_child_under_detached);
}

TEST_F(ObsTest, ExclusiveTimeSubtractsDirectChildren) {
  {
    const obs::Span outer("test.span.time");
    for (int i = 0; i < 3; ++i) {
      const obs::Span inner("busy");
      volatile double sink = 0;
      for (int k = 0; k < 20000; ++k) sink = sink + static_cast<double>(k);
    }
  }
  const auto spans = obs::Registry::global().spans();
  obs::SpanStats outer_stats{}, inner_stats{};
  for (const auto& [p, s] : spans) {
    if (p == "test.span.time") outer_stats = s;
    if (p == "test.span.time/busy") inner_stats = s;
  }
  ASSERT_EQ(outer_stats.count, 1u);
  ASSERT_EQ(inner_stats.count, 3u);
  // Parent inclusive covers the children; parent exclusive excludes them.
  EXPECT_GE(outer_stats.inclusive_ns,
            inner_stats.inclusive_ns);  // children ran inside the parent
  EXPECT_EQ(outer_stats.exclusive_ns,
            outer_stats.inclusive_ns -
                std::min(inner_stats.inclusive_ns, outer_stats.inclusive_ns));
  // A leaf span's exclusive time is its inclusive time.
  EXPECT_EQ(inner_stats.exclusive_ns, inner_stats.inclusive_ns);
}

// ---- Determinism across thread counts ---------------------------------------

/// A fixed parallel workload: counters bumped per element, a histogram of
/// integer values, and a kRoot span per chunk. Counter totals, bucket
/// counts, and span counts must not depend on the pool size.
void run_fixed_workload() {
  obs::Counter& items = obs::counter("test.det.items");
  obs::Counter& weight = obs::counter("test.det.weight");
  obs::Histogram& hist = obs::histogram("test.det.hist", {10.0, 100.0, 500.0});
  runtime::parallel_for(0, 1000, 16, [&](index_t b, index_t e) {
    const obs::Span chunk("test.det.chunk", obs::Span::kRoot);
    for (index_t i = b; i < e; ++i) {
      items.add(1);
      weight.add(i);
      hist.record(static_cast<double>(i % 700));
    }
  });
  obs::gauge("test.det.done").set(1.0);
}

std::string dump_after_workload(index_t threads) {
  runtime::set_num_threads(threads);
  obs::Registry::global().reset();
  run_fixed_workload();
  const std::string json =
      obs::to_json(obs::Registry::global(), {/*include_timings=*/false});
  runtime::set_num_threads(0);
  return json;
}

TEST_F(ObsTest, DumpWithoutTimingsIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = dump_after_workload(1);
  const std::string parallel = dump_after_workload(8);
  EXPECT_EQ(serial, parallel);
  // Sanity: the document actually contains the workload's instruments.
  EXPECT_NE(serial.find("\"test.det.items\": 1000"), std::string::npos);
  EXPECT_NE(serial.find("\"test.det.weight\": 499500"), std::string::npos);
  EXPECT_NE(serial.find("test.det.chunk"), std::string::npos);
  EXPECT_EQ(serial.find("inclusive_ns"), std::string::npos);
}

TEST_F(ObsTest, CounterTotalsExactUnderParallelMutation) {
  obs::Counter& c = obs::counter("test.det.hammer");
  runtime::set_num_threads(8);
  runtime::parallel_for(0, 100000, 128,
                        [&](index_t b, index_t e) { c.add(e - b); });
  runtime::set_num_threads(0);
  EXPECT_EQ(c.value(), 100000u);
}

// ---- JSON shape -------------------------------------------------------------

TEST_F(ObsTest, JsonDocumentHasSchemaAndSections) {
  obs::counter("test.json.c").add(2);
  obs::gauge("test.json.g").set(0.5);
  obs::histogram("test.json.h", {1.0}).record(0.5);
  const std::string json = obs::to_json(obs::Registry::global());
  EXPECT_NE(json.find("\"schema\": \"oasis.obs/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.c\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
  // Balanced braces (cheap well-formedness probe without a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(ObsTest, SummaryMentionsEveryInstrument) {
  obs::counter("test.summary.c").add(1);
  obs::gauge("test.summary.g").set(3.0);
  { const obs::Span s("test.summary.span"); }
  const std::string text = obs::summary();
  EXPECT_NE(text.find("test.summary.c"), std::string::npos);
  EXPECT_NE(text.find("test.summary.g"), std::string::npos);
  EXPECT_NE(text.find("test.summary.span"), std::string::npos);
}

// ---- Kernel-metrics gate ----------------------------------------------------

TEST_F(ObsTest, KernelMetricsToggle) {
  obs::set_kernel_metrics(true);
  EXPECT_TRUE(obs::kernel_metrics_enabled());
  obs::set_kernel_metrics(false);
  EXPECT_FALSE(obs::kernel_metrics_enabled());
}

}  // namespace
}  // namespace oasis
