// Opt-in performance guards for the blocked GEMM kernel family.
//
// Skipped unless OASIS_PERF_GUARD=1: wall-clock assertions are inherently
// machine-sensitive, so they run as a dedicated ci.sh stage (`./ci.sh perf`)
// on quiet hardware rather than inside the default suite. The floors are
// deliberately loose so only a real regression — packing gone quadratic, a
// microkernel de-vectorized, dispatch falling through to the wrong family —
// trips them:
//   * per (dtype, ISA): blocked must beat the same-dtype naive oracle by
//     ≥1.5× on a 512³ multiply (observed margins 2.7–5.5×). Every ISA
//     available on the host is swept; AVX2/NEON floors self-skip where the
//     kernels cannot run.
//   * fp32 scale path: the scalar fp32 blocked kernel must beat the
//     scalar-f64 blocked baseline by ≥1.8× at 512³ (half the bytes, twice
//     the lanes; observed ~3.3–3.8×). This is the bandwidth claim the
//     training/serving paths rely on, pinned where an auto-vectorizing
//     build exists. The AVX2 fp32 kernel gets a looser ≥1.2× floor: on
//     AVX-512 hosts a -march=native scalar build out-runs the ymm kernels,
//     so 2× is only guaranteed against a same-width baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "runtime/parallel.h"
#include "tensor/gemm/gemm.h"

namespace oasis {
namespace {

using tensor::gemm::Isa;
using tensor::gemm::Variant;
using Clock = std::chrono::steady_clock;

bool guard_enabled() {
  const char* env = std::getenv("OASIS_PERF_GUARD");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

#define OASIS_REQUIRE_PERF_GUARD()                                 \
  do {                                                             \
    if (!guard_enabled()) {                                        \
      GTEST_SKIP() << "set OASIS_PERF_GUARD=1 to run wall-clock "  \
                      "guards";                                    \
    }                                                              \
  } while (0)

/// Restores the dispatched ISA and thread count after each guard.
struct PerfEnvGuard {
  Isa saved = tensor::gemm::active_isa();
  ~PerfEnvGuard() {
    tensor::gemm::set_isa(saved);
    runtime::set_num_threads(0);
  }
};

double best_of_3(const std::function<void()>& fn) {
  double best = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    fn();
    const std::chrono::duration<double> dt = Clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

template <typename T>
struct GemmFixture {
  index_t n;
  std::vector<T> a, b, c;
  explicit GemmFixture(index_t n_) : n(n_), a(n * n), b(n * n), c(n * n) {
    common::Rng rng(0xBE7Cu);
    for (auto& v : a) v = static_cast<T>(rng.uniform(-1.0, 1.0));
    for (auto& v : b) v = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  double time_naive() {
    return best_of_3([this] {
      std::fill(c.begin(), c.end(), T(0));
      tensor::gemm::naive(Variant::NN, n, n, n, a.data(), b.data(), c.data());
    });
  }
  double time_blocked() {
    return best_of_3([this] {
      std::fill(c.begin(), c.end(), T(0));
      tensor::gemm::blocked(Variant::NN, n, n, n, a.data(), b.data(),
                            c.data());
    });
  }
};

/// The per-(dtype, ISA) floor: blocked ≥1.5× the same-dtype naive oracle.
template <typename T>
void expect_blocked_beats_naive(Isa isa, const char* dtype) {
  PerfEnvGuard guard;
  tensor::gemm::set_isa(isa);
  runtime::set_num_threads(0);  // hardware default, as in production runs
  GemmFixture<T> fx(512);
  const double naive_s = fx.time_naive();
  const double blocked_s = fx.time_blocked();
  const double speedup = naive_s / blocked_s;
  ::testing::Test::RecordProperty("naive_seconds", std::to_string(naive_s));
  ::testing::Test::RecordProperty("blocked_seconds",
                                  std::to_string(blocked_s));
  ::testing::Test::RecordProperty("speedup", std::to_string(speedup));
  EXPECT_GE(speedup, 1.5)
      << dtype << "/" << tensor::gemm::isa_name(isa)
      << " blocked GEMM regressed: naive " << naive_s << "s vs blocked "
      << blocked_s << "s";
}

class PerfGuardIsa : public ::testing::TestWithParam<Isa> {};

TEST_P(PerfGuardIsa, BlockedBeatsNaiveOn512CubeF64) {
  OASIS_REQUIRE_PERF_GUARD();
  expect_blocked_beats_naive<real>(GetParam(), "f64");
}

TEST_P(PerfGuardIsa, BlockedBeatsNaiveOn512CubeF32) {
  OASIS_REQUIRE_PERF_GUARD();
  expect_blocked_beats_naive<real32>(GetParam(), "f32");
}

INSTANTIATE_TEST_SUITE_P(
    Isas, PerfGuardIsa,
    ::testing::ValuesIn(tensor::gemm::available_isas()),
    [](const ::testing::TestParamInfo<Isa>& info) {
      return std::string(tensor::gemm::isa_name(info.param));
    });

// Unavailable ISAs cannot be timed on this host; record the self-skip
// explicitly so a CI log shows WHY an ISA's floor did not run.
TEST(PerfGuard, UnavailableIsaFloorsSelfSkip) {
  OASIS_REQUIRE_PERF_GUARD();
  std::string skipped;
  for (const Isa isa : {Isa::kAvx2, Isa::kNeon}) {
    if (!tensor::gemm::isa_available(isa)) {
      skipped += skipped.empty() ? "" : ",";
      skipped += tensor::gemm::isa_name(isa);
    }
  }
  if (!skipped.empty()) {
    GTEST_SKIP() << "ISA floors not runnable on this host: " << skipped;
  }
}

/// The fp32 bandwidth floor: scalar f32 blocked vs scalar f64 blocked at
/// 512³. Half the bytes and twice the lanes must buy ≥1.8× (observed
/// 3.3–3.8× on the AVX-512 reference host, ≥2× anywhere the build
/// auto-vectorizes).
TEST(PerfGuard, ScalarFp32BeatsScalarFp64On512Cube) {
  OASIS_REQUIRE_PERF_GUARD();
  PerfEnvGuard guard;
  runtime::set_num_threads(1);
  tensor::gemm::set_isa(Isa::kScalar);
  GemmFixture<real> f64(512);
  GemmFixture<real32> f32(512);
  const double f64_s = f64.time_blocked();
  const double f32_s = f32.time_blocked();
  const double speedup = f64_s / f32_s;
  RecordProperty("scalar_f64_seconds", std::to_string(f64_s));
  RecordProperty("scalar_f32_seconds", std::to_string(f32_s));
  RecordProperty("speedup", std::to_string(speedup));
  EXPECT_GE(speedup, 1.8)
      << "fp32 scale path regressed: scalar f64 " << f64_s
      << "s vs scalar f32 " << f32_s << "s";
}

TEST(PerfGuard, Avx2Fp32BeatsScalarFp64On512Cube) {
  OASIS_REQUIRE_PERF_GUARD();
  if (!tensor::gemm::isa_available(Isa::kAvx2)) {
    GTEST_SKIP() << "AVX2 kernels unavailable on this host";
  }
  PerfEnvGuard guard;
  runtime::set_num_threads(1);
  tensor::gemm::set_isa(Isa::kScalar);
  GemmFixture<real> f64(512);
  const double f64_s = f64.time_blocked();
  tensor::gemm::set_isa(Isa::kAvx2);
  GemmFixture<real32> f32(512);
  const double f32_s = f32.time_blocked();
  const double speedup = f64_s / f32_s;
  RecordProperty("scalar_f64_seconds", std::to_string(f64_s));
  RecordProperty("avx2_f32_seconds", std::to_string(f32_s));
  RecordProperty("speedup", std::to_string(speedup));
  EXPECT_GE(speedup, 1.2)
      << "AVX2 fp32 kernel regressed: scalar f64 " << f64_s
      << "s vs avx2 f32 " << f32_s << "s";
}

}  // namespace
}  // namespace oasis
