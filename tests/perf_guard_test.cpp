// Opt-in performance guard for the blocked GEMM layer.
//
// Skipped unless OASIS_PERF_GUARD=1: wall-clock assertions are inherently
// machine-sensitive, so this runs as a dedicated ci.sh stage (`./ci.sh
// perf`) on quiet hardware rather than inside the default suite. The bound
// is deliberately loose (blocked must beat naive by >=1.5x on a 512^3
// multiply; the observed margin is ~4x) so only a real regression — packing
// gone quadratic, the microkernel de-vectorized — trips it.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "runtime/parallel.h"
#include "tensor/gemm/gemm.h"

namespace oasis {
namespace {

using Clock = std::chrono::steady_clock;

double best_of_3(const std::function<void()>& fn) {
  double best = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    fn();
    const std::chrono::duration<double> dt = Clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

TEST(PerfGuard, BlockedBeatsNaiveOn512Cube) {
  const char* env = std::getenv("OASIS_PERF_GUARD");
  if (env == nullptr || env[0] == '\0' || env[0] == '0') {
    GTEST_SKIP() << "set OASIS_PERF_GUARD=1 to run wall-clock guards";
  }
  runtime::set_num_threads(0);  // hardware default, as in production runs

  const index_t n = 512;
  common::Rng rng(0xBE7Cu);
  std::vector<real> a(n * n), b(n * n), c(n * n, 0.0);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  const double naive_s = best_of_3([&] {
    std::fill(c.begin(), c.end(), 0.0);
    tensor::gemm::naive(tensor::gemm::Variant::NN, n, n, n, a.data(), b.data(),
                        c.data());
  });
  const double blocked_s = best_of_3([&] {
    std::fill(c.begin(), c.end(), 0.0);
    tensor::gemm::blocked(tensor::gemm::Variant::NN, n, n, n, a.data(),
                          b.data(), c.data());
  });

  const double speedup = naive_s / blocked_s;
  RecordProperty("naive_seconds", std::to_string(naive_s));
  RecordProperty("blocked_seconds", std::to_string(blocked_s));
  RecordProperty("speedup", std::to_string(speedup));
  EXPECT_GE(speedup, 1.5) << "blocked GEMM regressed: naive " << naive_s
                          << "s vs blocked " << blocked_s << "s";
}

}  // namespace
}  // namespace oasis
