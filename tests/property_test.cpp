// Cross-module property sweeps (parameterized): conv gradient correctness
// over layer geometries, warp inverse consistency over angles, FedAvg
// algebraic identities, and defense-invariant batch properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>

#include "attack/calibration.h"
#include "augment/affine.h"
#include "augment/policy.h"
#include "fl/aggregation.h"
#include "fl/population.h"
#include "fl/shard.h"
#include "nn/conv2d.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "runtime/parallel.h"
#include "tensor/gemm/gemm.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace oasis {
namespace {

// ---- Conv2d geometry sweep --------------------------------------------------

using ConvGeometry = std::tuple<int /*in_ch*/, int /*out_ch*/, int /*kernel*/,
                                int /*stride*/, int /*pad*/>;

class ConvGeometrySweep : public ::testing::TestWithParam<ConvGeometry> {};

TEST_P(ConvGeometrySweep, GradientsMatchFiniteDifferences) {
  const auto [in_ch, out_ch, kernel, stride, pad] = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(in_ch * 1000 + out_ch * 100 +
                                             kernel * 10 + stride));
  nn::Conv2d conv(in_ch, out_ch, kernel, stride, pad, rng);
  tensor::Tensor x = tensor::Tensor::randn(
      {2, static_cast<index_t>(in_ch), 7, 7}, rng);
  EXPECT_LT(testutil::check_gradients(conv, x, rng), 3e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometrySweep,
    ::testing::Values(ConvGeometry{1, 1, 1, 1, 0},   // pointwise
                      ConvGeometry{2, 3, 3, 1, 1},   // same-pad 3x3
                      ConvGeometry{3, 2, 3, 2, 1},   // strided
                      ConvGeometry{1, 4, 5, 1, 2},   // large kernel
                      ConvGeometry{2, 2, 3, 3, 0})); // stride > 1, no pad

// ---- Warp inverse consistency ----------------------------------------------

class RotationAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(RotationAngleSweep, RotateThenUnrotateIsNearIdentityInTheInterior) {
  const real theta = GetParam();
  common::Rng rng(11);
  tensor::Tensor img = tensor::Tensor::rand({3, 24, 24}, rng);
  const tensor::Tensor back =
      augment::rotate(augment::rotate(img, theta), -theta);
  // Only the central disc survives both zero-filled warps; compare there.
  real max_err = 0.0;
  const real c = 11.5;
  for (index_t ch = 0; ch < 3; ++ch) {
    for (index_t i = 0; i < 24; ++i) {
      for (index_t j = 0; j < 24; ++j) {
        const real r = std::hypot(static_cast<real>(i) - c,
                                  static_cast<real>(j) - c);
        if (r > 7.0) continue;
        max_err = std::max(max_err,
                           std::abs(back.at3(ch, i, j) - img.at3(ch, i, j)));
      }
    }
  }
  // Bilinear resampling twice smooths but must stay close.
  EXPECT_LT(max_err, 0.35) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Angles, RotationAngleSweep,
                         ::testing::Values(0.1, 0.35, 0.7, 1.1, 1.4));

class ShearFactorSweep : public ::testing::TestWithParam<double> {};

TEST_P(ShearFactorSweep, ShearThenUnshearIsNearIdentityInTheInterior) {
  const real mu = GetParam();
  common::Rng rng(12);
  tensor::Tensor img = tensor::Tensor::rand({3, 24, 24}, rng);
  const tensor::Tensor back = augment::shear(augment::shear(img, mu), -mu);
  real max_err = 0.0;
  for (index_t ch = 0; ch < 3; ++ch) {
    for (index_t i = 8; i < 16; ++i) {
      for (index_t j = 8; j < 16; ++j) {
        max_err = std::max(max_err,
                           std::abs(back.at3(ch, i, j) - img.at3(ch, i, j)));
      }
    }
  }
  EXPECT_LT(max_err, 0.35) << "mu=" << mu;
}

INSTANTIATE_TEST_SUITE_P(Factors, ShearFactorSweep,
                         ::testing::Values(0.1, 0.25, 0.4, 0.6));

// ---- FedAvg algebra ----------------------------------------------------------

TEST(FedAvgAlgebra, AverageOfIdenticalUpdatesIsTheUpdate) {
  common::Rng rng(13);
  const tensor::Tensor g = tensor::Tensor::randn({6}, rng);
  std::vector<fl::ClientUpdateMessage> updates(3);
  for (std::size_t i = 0; i < 3; ++i) {
    updates[i].client_id = i;
    updates[i].num_examples = 4;
    updates[i].gradients = tensor::serialize_tensors({g});
  }
  const auto avg = fl::fedavg(updates);
  EXPECT_TRUE(tensor::allclose(avg[0], g));
}

TEST(FedAvgAlgebra, WeightedAverageIsConvexCombination) {
  common::Rng rng(14);
  const tensor::Tensor a = tensor::Tensor::randn({5}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({5}, rng);
  std::vector<fl::ClientUpdateMessage> updates(2);
  updates[0].num_examples = 1;
  updates[0].gradients = tensor::serialize_tensors({a});
  updates[1].num_examples = 3;
  updates[1].gradients = tensor::serialize_tensors({b});
  const auto avg = fl::fedavg(updates);
  // Result must lie between min and max coordinatewise (convexity).
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_GE(avg[0][i], std::min(a[i], b[i]) - 1e-12);
    EXPECT_LE(avg[0][i], std::max(a[i], b[i]) + 1e-12);
  }
  // And exactly (a + 3b)/4.
  tensor::Tensor expected = a;
  expected.add_scaled_(b, 3.0);
  expected /= 4.0;
  EXPECT_TRUE(tensor::allclose(avg[0], expected));
}

// ---- Defense batch invariants -----------------------------------------------

TEST(DefenseInvariants, AugmentedBatchNeverMutatesOriginals) {
  common::Rng rng(15);
  const tensor::Tensor images = tensor::Tensor::rand({3, 3, 12, 12}, rng);
  data::Batch batch{images, {0, 1, 2}};
  for (const auto kinds :
       {std::vector<augment::TransformKind>{
            augment::TransformKind::kMajorRotation},
        std::vector<augment::TransformKind>{
            augment::TransformKind::kMajorRotation,
            augment::TransformKind::kShear}}) {
    const auto policy = augment::make_policy(kinds);
    const data::Batch out = policy.augment(batch, rng);
    // The original slots are bit-identical and the input batch is untouched.
    EXPECT_TRUE(batch.images == images);
    for (index_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(out.images.slice(i) == images.slice(i));
    }
  }
}

TEST(DefenseInvariants, EveryVariantSharesItsOriginalsMean) {
  // The Proposition 1 mechanism, checked across every policy the benches
  // use: all variants carry the original's mean brightness to ~1e-12.
  common::Rng rng(16);
  const tensor::Tensor img = tensor::Tensor::rand({3, 16, 16}, rng);
  using augment::TransformKind;
  for (const auto kinds : {std::vector<TransformKind>{TransformKind::kMajorRotation},
                           std::vector<TransformKind>{TransformKind::kMinorRotation},
                           std::vector<TransformKind>{TransformKind::kShear},
                           std::vector<TransformKind>{TransformKind::kHorizontalFlip},
                           std::vector<TransformKind>{TransformKind::kVerticalFlip},
                           std::vector<TransformKind>{TransformKind::kMajorRotation,
                                                      TransformKind::kShear}}) {
    const auto policy = augment::make_policy(kinds);
    for (const auto& v : policy.variants(img, rng)) {
      EXPECT_NEAR(v.mean(), img.mean(), 1e-12) << policy.label();
    }
  }
}

// ---- FedAvg order/scale properties ------------------------------------------

std::vector<fl::ClientUpdateMessage> random_updates(std::uint64_t seed,
                                                    index_t clients,
                                                    index_t dim) {
  common::Rng rng(seed);
  std::vector<fl::ClientUpdateMessage> updates(clients);
  for (index_t i = 0; i < clients; ++i) {
    updates[i].client_id = i;
    updates[i].num_examples =
        static_cast<std::uint64_t>(rng.uniform_int(1, 16));
    updates[i].gradients = tensor::serialize_tensors(
        {tensor::Tensor::randn({dim}, rng),
         tensor::Tensor::randn({dim / 2}, rng)});
  }
  return updates;
}

TEST(FedAvgAlgebra, AverageIsInvariantUnderClientOrderPermutation) {
  // FedAvg is a weighted mean — a set operation. Reordering the client
  // updates permutes the float accumulation order, so the results may
  // differ in the last bits but never beyond.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto updates = random_updates(seed, 5, 8);
    const auto base = fl::fedavg(updates);

    auto reversed = updates;
    std::reverse(reversed.begin(), reversed.end());
    auto rotated = updates;
    std::rotate(rotated.begin(), rotated.begin() + 2, rotated.end());

    for (const auto& permuted : {reversed, rotated}) {
      const auto avg = fl::fedavg(permuted);
      ASSERT_EQ(avg.size(), base.size());
      for (std::size_t t = 0; t < base.size(); ++t) {
        EXPECT_TRUE(tensor::allclose(avg[t], base[t], 1e-12, 1e-12))
            << "seed " << seed << " tensor " << t;
      }
    }
  }
}

TEST(FedAvgAlgebra, AverageIsHomogeneousInExampleWeights) {
  // Scaling every client's num_examples by the same factor cancels in
  // Eq. 1: sum(c*w_i*g_i) / sum(c*w_i) = sum(w_i*g_i) / sum(w_i).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto updates = random_updates(seed ^ 0xABCD, 4, 6);
    auto scaled = updates;
    for (auto& u : scaled) u.num_examples *= 3;
    const auto base = fl::fedavg(updates);
    const auto avg = fl::fedavg(scaled);
    for (std::size_t t = 0; t < base.size(); ++t) {
      EXPECT_TRUE(tensor::allclose(avg[t], base[t], 1e-12, 1e-12))
          << "seed " << seed;
    }
  }
}

TEST(FedAvgAlgebra, UniformWeightsMatchUnweightedAverage) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto updates = random_updates(seed ^ 0x77, 6, 5);
    for (auto& u : updates) u.num_examples = 7;
    const auto weighted = fl::fedavg(updates);
    const auto unweighted = fl::fedavg_unweighted(updates);
    for (std::size_t t = 0; t < weighted.size(); ++t) {
      EXPECT_TRUE(tensor::allclose(weighted[t], unweighted[t], 1e-12, 1e-12))
          << "seed " << seed;
    }
  }
}

// ---- RTF calibration cutoffs ------------------------------------------------

TEST(RtfCalibration, QuantileCutoffsAreMonotoneForRandomSamples) {
  // The RTF bin boundaries are empirical quantiles at increasing levels;
  // they must be ascending (and inside the sample's range) for every
  // sample, otherwise the bin logic would assign one gradient difference
  // to two bins.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    common::Rng rng(seed);
    std::vector<real> sample;
    const index_t size = 16 + (seed % 50);
    sample.reserve(size);
    for (index_t i = 0; i < size; ++i) {
      sample.push_back(rng.normal() * (1.0 + static_cast<real>(seed % 7)));
    }
    const index_t bins = 2 + (seed % 30);
    const auto cutoffs = attack::quantile_cutoffs(sample, bins);
    ASSERT_EQ(cutoffs.size(), bins) << "seed " << seed;
    EXPECT_TRUE(std::is_sorted(cutoffs.begin(), cutoffs.end()))
        << "seed " << seed;
    const auto [mn, mx] = std::minmax_element(sample.begin(), sample.end());
    EXPECT_GE(cutoffs.front(), *mn) << "seed " << seed;
    EXPECT_LE(cutoffs.back(), *mx) << "seed " << seed;
  }
}

// ---- Blocked-GEMM algebra ---------------------------------------------------
//
// These run on the default (blocked) kernel path and pin the algebraic
// identities the packing/tiling must preserve. The first three are EXACT:
// identity columns, transposed evaluation order, and row/column block
// partitions all execute the same per-element multiply-add chain, so even
// the bits must agree. Only the k-partition test tolerates rounding, since
// splitting k regroups the accumulation.

bool same_bits(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(real)) == 0;
}

TEST(GemmAlgebra, MultiplyByIdentityIsTheInput) {
  common::Rng rng(9001);
  const index_t m = 37, k = 21;
  const tensor::Tensor a = tensor::Tensor::rand({m, k}, rng, -1.0, 1.0);
  tensor::Tensor eye({k, k});
  for (index_t i = 0; i < k; ++i) eye.at2(i, i) = 1.0;
  const tensor::Tensor prod = tensor::matmul(a, eye);
  ASSERT_EQ(prod.shape(), a.shape());
  for (index_t i = 0; i < m * k; ++i) EXPECT_EQ(prod[i], a[i]) << "i=" << i;
}

TEST(GemmAlgebra, TransposeOfProductIsReversedTransposedProduct) {
  // (A·B)ᵀ and Bᵀ·Aᵀ accumulate every output element over the same
  // ascending-k chain (multiplication commutes bit-for-bit), so the blocked
  // kernels must produce identical bits for both evaluation orders.
  common::Rng rng(9002);
  const tensor::Tensor a = tensor::Tensor::rand({19, 45}, rng, -1.0, 1.0);
  const tensor::Tensor b = tensor::Tensor::rand({45, 28}, rng, -1.0, 1.0);
  const tensor::Tensor lhs = tensor::transpose(tensor::matmul(a, b));
  const tensor::Tensor rhs =
      tensor::matmul(tensor::transpose(b), tensor::transpose(a));
  EXPECT_TRUE(same_bits(lhs, rhs));
}

TEST(GemmAlgebra, RowAndColumnBlockPartitionsAreExact) {
  // Output rows (and columns) are computed independently, so slicing the
  // inputs into blocks and multiplying blockwise reproduces the one-shot
  // product exactly — this is the property the row-panel parallel split and
  // the NC column blocking rely on.
  common::Rng rng(9003);
  const index_t m = 30, k = 41, n = 26, msplit = 13, nsplit = 11;
  const tensor::Tensor a = tensor::Tensor::rand({m, k}, rng, -1.0, 1.0);
  const tensor::Tensor b = tensor::Tensor::rand({k, n}, rng, -1.0, 1.0);
  const tensor::Tensor full = tensor::matmul(a, b);

  // Row partition of A.
  tensor::Tensor a_top({msplit, k}), a_bot({m - msplit, k});
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      if (i < msplit) {
        a_top.at2(i, j) = a.at2(i, j);
      } else {
        a_bot.at2(i - msplit, j) = a.at2(i, j);
      }
    }
  }
  const tensor::Tensor top = tensor::matmul(a_top, b);
  const tensor::Tensor bot = tensor::matmul(a_bot, b);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const real expect = i < msplit ? top.at2(i, j) : bot.at2(i - msplit, j);
      EXPECT_EQ(full.at2(i, j), expect) << "row block at " << i << "," << j;
    }
  }

  // Column partition of B.
  tensor::Tensor b_left({k, nsplit}), b_right({k, n - nsplit});
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (j < nsplit) {
        b_left.at2(i, j) = b.at2(i, j);
      } else {
        b_right.at2(i, j - nsplit) = b.at2(i, j);
      }
    }
  }
  const tensor::Tensor left = tensor::matmul(a, b_left);
  const tensor::Tensor right = tensor::matmul(a, b_right);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const real expect =
          j < nsplit ? left.at2(i, j) : right.at2(i, j - nsplit);
      EXPECT_EQ(full.at2(i, j), expect) << "col block at " << i << "," << j;
    }
  }
}

TEST(GemmAlgebra, KPartitionDistributesOverAddition) {
  // A·B == A1·B1 + A2·B2 when k is split. Regrouping the accumulation is
  // NOT bit-exact (that is precisely why the KC loop stays serial inside the
  // kernel), so this one gets a tolerance.
  common::Rng rng(9004);
  const index_t m = 22, k = 50, n = 18, ksplit = 23;
  const tensor::Tensor a = tensor::Tensor::rand({m, k}, rng, -1.0, 1.0);
  const tensor::Tensor b = tensor::Tensor::rand({k, n}, rng, -1.0, 1.0);
  tensor::Tensor a1({m, ksplit}), a2({m, k - ksplit});
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      if (j < ksplit) {
        a1.at2(i, j) = a.at2(i, j);
      } else {
        a2.at2(i, j - ksplit) = a.at2(i, j);
      }
    }
  }
  tensor::Tensor b1({ksplit, n}), b2({k - ksplit, n});
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (i < ksplit) {
        b1.at2(i, j) = b.at2(i, j);
      } else {
        b2.at2(i - ksplit, j) = b.at2(i, j);
      }
    }
  }
  const tensor::Tensor whole = tensor::matmul(a, b);
  const tensor::Tensor split = tensor::matmul(a1, b1) + tensor::matmul(a2, b2);
  EXPECT_TRUE(tensor::allclose(whole, split, 1e-12, 1e-12));
}

// ---- Float scale-path contract ----------------------------------------------
//
// The fp32 GEMM path trades precision for bandwidth; these sweeps pin both
// halves of its contract under every ISA available on this host:
//   accuracy — the float result tracks the double result computed from the
//     same (float-representable) inputs within the classical inner-product
//     bound |c32 − c64| ≤ k·eps32 · Σ|a||b|, uniformly over random shapes;
//   algebra  — the identities that are exact chains of representable
//     operations (identity columns, transposed evaluation order, row/column
//     block partitions) stay BIT-exact in float too, while the k-partition
//     regrouping gets an eps32-scaled tolerance.

/// Restores the dispatched ISA when a float-contract test exits early.
struct IsaGuard {
  tensor::gemm::Isa saved = tensor::gemm::active_isa();
  ~IsaGuard() { tensor::gemm::set_isa(saved); }
};

std::vector<real32> random_f32(index_t n, common::Rng& rng) {
  std::vector<real32> v(n);
  for (auto& x : v) x = static_cast<real32>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<real32> gemm_f32(tensor::gemm::Variant v, index_t m, index_t k,
                             index_t n, const std::vector<real32>& a,
                             const std::vector<real32>& b) {
  std::vector<real32> c(m * n, 0.0f);
  tensor::gemm::blocked(v, m, k, n, a.data(), b.data(), c.data());
  return c;
}

TEST(GemmFloatContract, TracksDoubleWithinInnerProductBound) {
  IsaGuard guard;
  constexpr real kEps32 = 1.1920928955078125e-7;  // 2^-23
  common::Rng rng(0xF32Au);
  for (const auto isa : tensor::gemm::available_isas()) {
    tensor::gemm::set_isa(isa);
    for (int trial = 0; trial < 12; ++trial) {
      const auto m = static_cast<index_t>(rng.uniform_int(1, 80));
      const auto k = static_cast<index_t>(rng.uniform_int(1, 300));
      const auto n = static_cast<index_t>(rng.uniform_int(1, 80));
      const auto a32 = random_f32(m * k, rng);
      const auto b32 = random_f32(k * n, rng);
      // Promote the SAME float values to double so the only divergence is
      // the working precision of the accumulation, not the inputs.
      std::vector<real> a64(a32.begin(), a32.end());
      std::vector<real> b64(b32.begin(), b32.end());
      const auto c32 = gemm_f32(tensor::gemm::Variant::NN, m, k, n, a32, b32);
      std::vector<real> c64(m * n, 0.0);
      tensor::gemm::blocked(tensor::gemm::Variant::NN, m, k, n, a64.data(),
                            b64.data(), c64.data());
      for (index_t i = 0; i < m; ++i) {
        for (index_t j = 0; j < n; ++j) {
          real abs_bound = 0.0;  // Σ_l |a(i,l)|·|b(l,j)| in double
          for (index_t l = 0; l < k; ++l) {
            abs_bound += std::abs(a64[i * k + l]) * std::abs(b64[l * n + j]);
          }
          const real err =
              std::abs(static_cast<real>(c32[i * n + j]) - c64[i * n + j]);
          EXPECT_LE(err, static_cast<real>(k) * kEps32 * abs_bound + 1e-12)
              << tensor::gemm::isa_name(isa) << " trial " << trial << " ("
              << m << "x" << k << "x" << n << ") at " << i << "," << j;
        }
      }
    }
  }
}

TEST(GemmFloatContract, MultiplyByIdentityIsExact) {
  IsaGuard guard;
  common::Rng rng(0xF901u);
  const index_t m = 37, k = 21;
  const auto a = random_f32(m * k, rng);
  std::vector<real32> eye(k * k, 0.0f);
  for (index_t i = 0; i < k; ++i) eye[i * k + i] = 1.0f;
  for (const auto isa : tensor::gemm::available_isas()) {
    tensor::gemm::set_isa(isa);
    const auto prod = gemm_f32(tensor::gemm::Variant::NN, m, k, k, a, eye);
    for (index_t i = 0; i < m * k; ++i) {
      EXPECT_EQ(prod[i], a[i])
          << tensor::gemm::isa_name(isa) << " i=" << i;
    }
  }
}

TEST(GemmFloatContract, TransposeOfProductIsReversedTransposedProduct) {
  // Same argument as the double version: (A·B)ᵀ(j,i) and (Bᵀ·Aᵀ)(j,i) run
  // the identical ascending-k FMA chain (multiplication commutes bitwise),
  // so the float kernels must agree bit-for-bit as well.
  IsaGuard guard;
  common::Rng rng(0xF902u);
  const index_t m = 19, k = 45, n = 28;
  const auto a = random_f32(m * k, rng);
  const auto b = random_f32(k * n, rng);
  std::vector<real32> bt(n * k), at(k * m);
  for (index_t i = 0; i < k; ++i)
    for (index_t j = 0; j < n; ++j) bt[j * k + i] = b[i * n + j];
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < k; ++j) at[j * m + i] = a[i * k + j];
  for (const auto isa : tensor::gemm::available_isas()) {
    tensor::gemm::set_isa(isa);
    const auto c = gemm_f32(tensor::gemm::Variant::NN, m, k, n, a, b);
    const auto d = gemm_f32(tensor::gemm::Variant::NN, n, k, m, bt, at);
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) {
        EXPECT_EQ(c[i * n + j], d[j * m + i])
            << tensor::gemm::isa_name(isa) << " at " << i << "," << j;
      }
    }
  }
}

TEST(GemmFloatContract, RowAndColumnBlockPartitionsAreExact) {
  IsaGuard guard;
  common::Rng rng(0xF903u);
  const index_t m = 30, k = 41, n = 26, msplit = 13, nsplit = 11;
  const auto a = random_f32(m * k, rng);
  const auto b = random_f32(k * n, rng);
  std::vector<real32> a_top(a.begin(), a.begin() + msplit * k);
  std::vector<real32> a_bot(a.begin() + msplit * k, a.end());
  std::vector<real32> b_left(k * nsplit), b_right(k * (n - nsplit));
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (j < nsplit) {
        b_left[i * nsplit + j] = b[i * n + j];
      } else {
        b_right[i * (n - nsplit) + (j - nsplit)] = b[i * n + j];
      }
    }
  }
  for (const auto isa : tensor::gemm::available_isas()) {
    tensor::gemm::set_isa(isa);
    const auto full = gemm_f32(tensor::gemm::Variant::NN, m, k, n, a, b);
    const auto top = gemm_f32(tensor::gemm::Variant::NN, msplit, k, n, a_top, b);
    const auto bot =
        gemm_f32(tensor::gemm::Variant::NN, m - msplit, k, n, a_bot, b);
    const auto left =
        gemm_f32(tensor::gemm::Variant::NN, m, k, nsplit, a, b_left);
    const auto right =
        gemm_f32(tensor::gemm::Variant::NN, m, k, n - nsplit, a, b_right);
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) {
        const real32 row_expect = i < msplit ? top[i * n + j]
                                             : bot[(i - msplit) * n + j];
        EXPECT_EQ(full[i * n + j], row_expect)
            << tensor::gemm::isa_name(isa) << " row block at " << i << ","
            << j;
        const real32 col_expect = j < nsplit
                                      ? left[i * nsplit + j]
                                      : right[i * (n - nsplit) + (j - nsplit)];
        EXPECT_EQ(full[i * n + j], col_expect)
            << tensor::gemm::isa_name(isa) << " col block at " << i << ","
            << j;
      }
    }
  }
}

TEST(GemmFloatContract, KPartitionDistributesWithinFloatTolerance) {
  // Splitting k regroups the accumulation — not bit-exact in float either,
  // so the tolerance scales with eps32 instead of eps64.
  IsaGuard guard;
  common::Rng rng(0xF904u);
  const index_t m = 22, k = 50, n = 18, ksplit = 23;
  const auto a = random_f32(m * k, rng);
  const auto b = random_f32(k * n, rng);
  std::vector<real32> a1(m * ksplit), a2(m * (k - ksplit));
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      if (j < ksplit) {
        a1[i * ksplit + j] = a[i * k + j];
      } else {
        a2[i * (k - ksplit) + (j - ksplit)] = a[i * k + j];
      }
    }
  }
  std::vector<real32> b1(b.begin(), b.begin() + ksplit * n);
  std::vector<real32> b2(b.begin() + ksplit * n, b.end());
  for (const auto isa : tensor::gemm::available_isas()) {
    tensor::gemm::set_isa(isa);
    const auto whole = gemm_f32(tensor::gemm::Variant::NN, m, k, n, a, b);
    auto split = gemm_f32(tensor::gemm::Variant::NN, m, ksplit, n, a1, b1);
    tensor::gemm::blocked(tensor::gemm::Variant::NN, m, k - ksplit, n,
                          a2.data(), b2.data(), split.data());
    for (index_t i = 0; i < m * n; ++i) {
      EXPECT_NEAR(whole[i], split[i], 1e-4f)
          << tensor::gemm::isa_name(isa) << " i=" << i;
    }
  }
}

// ---- Sharded round engine properties ----------------------------------------

/// Final model bytes of a small sharded federation — the partition-invariance
/// probe. Everything except the shard size is pinned, so any byte difference
/// between two calls is the partition leaking into the protocol.
tensor::ByteBuffer sharded_model_bytes(index_t shard_size,
                                       std::uint64_t pop_seed) {
  runtime::set_num_threads(1);
  fl::VirtualPopulationConfig pop;
  pop.num_clients = 18;
  pop.seed = pop_seed;
  pop.num_classes = 3;
  pop.height = pop.width = 6;
  pop.examples_per_client = 4;
  pop.batch_size = 2;
  pop.factory = [] {
    common::Rng init(0xF00D);
    return nn::make_linear_model({3, 6, 6}, 3, init);
  };
  fl::ShardedConfig cfg;
  cfg.cohort_size = 8;
  cfg.shard_size = shard_size;
  cfg.seed = 5;
  auto server = std::make_unique<fl::Server>(pop.factory(), 0.1);
  fl::ShardedSimulation engine(std::move(server), fl::VirtualPopulation(pop),
                               cfg);
  engine.run(2);
  return nn::serialize_state(engine.server().global_model());
}

class ShardSizeSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(ShardSizeSweep, PartitionDoesNotChangeTheRound) {
  // The shard size is an execution detail: the fold order is the cohort
  // order regardless of where the shard boundaries fall, so the final model
  // must be BYTE-identical at every partition — including shard_size 1
  // (every client its own shard) and 64 (the whole cohort in one shard).
  const tensor::ByteBuffer base = sharded_model_bytes(8, 0xA11CE);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(sharded_model_bytes(GetParam(), 0xA11CE), base);
}

INSTANTIATE_TEST_SUITE_P(Partitions, ShardSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 13, 64));

TEST(CohortSampling, MembershipIsPureAndTicketKeyed) {
  // Hash-threshold cohort membership is a pure function of
  // (seed, ticket, id): re-evaluating reproduces the cohort exactly, while
  // a fresh ticket or a different seed draws a fresh cohort.
  constexpr index_t kN = 997;
  constexpr index_t kM = 313;
  const std::uint64_t threshold = fl::cohort_threshold(kM, kN);
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    std::vector<std::uint64_t> t0, t0_again, t1, other_seed;
    for (std::uint64_t id = 0; id < kN; ++id) {
      if (fl::cohort_member(seed, 0, id, threshold)) t0.push_back(id);
      if (fl::cohort_member(seed, 0, id, threshold)) t0_again.push_back(id);
      if (fl::cohort_member(seed, 1, id, threshold)) t1.push_back(id);
      if (fl::cohort_member(seed ^ 0x5A5A, 0, id, threshold)) {
        other_seed.push_back(id);
      }
    }
    EXPECT_EQ(t0, t0_again) << "seed " << seed;
    EXPECT_NE(t0, t1) << "seed " << seed << ": ticket not keyed in";
    EXPECT_NE(t0, other_seed) << "seed " << seed << ": seed not keyed in";
    // Binomial(kN, kM/kN) concentrates near kM; a sampler that ignores the
    // threshold would land near 0, kN/2, or kN.
    EXPECT_GT(t0.size(), kM / 2) << "seed " << seed;
    EXPECT_LT(t0.size(), 2 * kM) << "seed " << seed;
  }
}

TEST(CohortSampling, GrowingTheTargetOnlyAddsMembers) {
  // Thresholds are monotone in the target and membership is mix < threshold,
  // so cohorts are NESTED as the participation target grows — raising M
  // never evicts a client that was already in.
  constexpr index_t kN = 499;
  for (const std::uint64_t seed : {3ULL, 9ULL, 27ULL}) {
    std::uint64_t prev_threshold = 0;
    std::vector<std::uint64_t> prev_members;
    for (const index_t target : {index_t{50}, index_t{125}, index_t{250},
                                 index_t{499}}) {
      const std::uint64_t threshold = fl::cohort_threshold(target, kN);
      EXPECT_GE(threshold, prev_threshold);
      std::vector<std::uint64_t> members;
      for (std::uint64_t id = 0; id < kN; ++id) {
        if (fl::cohort_member(seed, 2, id, threshold)) members.push_back(id);
      }
      EXPECT_TRUE(std::includes(members.begin(), members.end(),
                                prev_members.begin(), prev_members.end()))
          << "seed " << seed << " target " << target;
      prev_threshold = threshold;
      prev_members = std::move(members);
    }
    // target == population is the everyone-joins sentinel.
    EXPECT_EQ(prev_members.size(), kN);
  }
}

TEST(ShardedFedAvg, StreamingAccumulatorMatchesBatchFedavgExactly) {
  // The sharded engine streams through FedAvgAccumulator; the materialized
  // path batches through fedavg(). Same update sequence → same fold order →
  // byte-identical averages. This is the reducer half of the differential
  // shard tests, isolated from the round machinery.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto updates = random_updates(seed ^ 0x51A2D, 7, 6);
    fl::FedAvgAccumulator acc;
    for (const auto& u : updates) acc.add(u);
    const auto streamed = acc.average();
    const auto batched = fl::fedavg(updates);
    ASSERT_EQ(streamed.size(), batched.size());
    for (std::size_t t = 0; t < batched.size(); ++t) {
      EXPECT_TRUE(streamed[t] == batched[t]) << "seed " << seed;
    }
  }
}

TEST(ShardedFedAvg, HomogeneousUnderPowerOfTwoWeightScaling) {
  // Scaling every weight by 2^k shifts exponents without touching mantissas,
  // so the weighted average is not just close — it is BIT-identical. (The
  // general-factor version, with rounding slack, is
  // FedAvgAlgebra.AverageIsHomogeneousInExampleWeights.)
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto updates = random_updates(seed ^ 0x0EED, 5, 8);
    auto scaled = updates;
    for (auto& u : scaled) u.num_examples *= 8;
    fl::FedAvgAccumulator base_acc;
    fl::FedAvgAccumulator scaled_acc;
    for (const auto& u : updates) base_acc.add(u);
    for (const auto& u : scaled) scaled_acc.add(u);
    const auto base = base_acc.average();
    const auto rescaled = scaled_acc.average();
    for (std::size_t t = 0; t < base.size(); ++t) {
      EXPECT_TRUE(base[t] == rescaled[t]) << "seed " << seed;
    }
  }
}

TEST(ShardedFedAvg, PermutationWithinAShardPerturbsOnlyLastBits) {
  // Reordering clients WITHIN a shard permutes the float fold order — the
  // mathematical mean is unchanged, so results agree to strict tolerance
  // (that they need not agree in bytes is exactly why the engine pins the
  // fold order to the cohort order).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto updates = random_updates(seed ^ 0xD00F, 6, 9);
    auto reversed = updates;
    std::reverse(reversed.begin(), reversed.end());
    auto rotated = updates;
    std::rotate(rotated.begin(), rotated.begin() + 2, rotated.end());
    fl::FedAvgAccumulator base_acc;
    for (const auto& u : updates) base_acc.add(u);
    const auto base = base_acc.average();
    for (const auto& permuted : {reversed, rotated}) {
      fl::FedAvgAccumulator acc;
      for (const auto& u : permuted) acc.add(u);
      const auto avg = acc.average();
      for (std::size_t t = 0; t < base.size(); ++t) {
        EXPECT_TRUE(tensor::allclose(avg[t], base[t], 1e-12, 1e-12))
            << "seed " << seed << " tensor " << t;
      }
    }
  }
}

TEST(RtfCalibration, QuantileCutoffsRefineMonotonically) {
  // The empirical CDF is monotone: raising the level never lowers the
  // cutoff. Checked across the quantile levels the attack actually uses.
  common::Rng rng(321);
  std::vector<real> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.normal());
  for (real lo = 0.05; lo < 0.9; lo += 0.05) {
    EXPECT_LE(attack::empirical_quantile(sample, lo),
              attack::empirical_quantile(sample, lo + 0.05) + 1e-15);
  }
}

// ---- Byzantine-robust aggregation -------------------------------------------

/// n random tensor-list updates (two tensors each), seeded.
std::vector<std::vector<tensor::Tensor>> random_gradient_sets(
    std::uint64_t seed, std::size_t n) {
  common::Rng rng(seed);
  std::vector<std::vector<tensor::Tensor>> sets;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<tensor::Tensor> g;
    g.push_back(tensor::Tensor::randn({4, 3}, rng));
    g.push_back(tensor::Tensor::randn({5}, rng));
    sets.push_back(std::move(g));
  }
  return sets;
}

bool bit_identical(const std::vector<tensor::Tensor>& a,
                   const std::vector<tensor::Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (a[t].size() != b[t].size()) return false;
    if (std::memcmp(a[t].data().data(), b[t].data().data(),
                    sizeof(real) * a[t].size()) != 0) {
      return false;
    }
  }
  return true;
}

TEST(RobustAggregation, OrderStatisticsArePermutationInvariantBitForBit) {
  // Median/trimmed mean sort per coordinate, so arrival order must not
  // even perturb the last float bit — stronger than FedAvg's allclose-only
  // permutation invariance above.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto base = random_gradient_sets(seed, 7);
    auto reversed = base;
    std::reverse(reversed.begin(), reversed.end());
    auto rotated = base;
    std::rotate(rotated.begin(), rotated.begin() + 3, rotated.end());
    for (const auto& permuted : {reversed, rotated}) {
      EXPECT_TRUE(bit_identical(fl::coordinate_median(base),
                                fl::coordinate_median(permuted)))
          << "seed " << seed;
      EXPECT_TRUE(bit_identical(fl::trimmed_mean(base, 0.2),
                                fl::trimmed_mean(permuted, 0.2)))
          << "seed " << seed;
    }
  }
}

TEST(RobustAggregation, BreakdownPointCapsOutlierInfluence) {
  // Up to floor(trim_fraction·n) arbitrary updates per tail (and any
  // f < n/2 for the median) cannot push the result outside the honest
  // values' per-coordinate range — the breakdown-point guarantee the
  // Byzantine chaos suite exercises end to end.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto honest = random_gradient_sets(seed ^ 0xB12, 8);
    auto attacked = honest;
    // floor(0.25·10) = 2 attackers, each injecting ±1e9 per coordinate.
    common::Rng rng(seed);
    for (int a = 0; a < 2; ++a) {
      std::vector<tensor::Tensor> evil;
      for (const auto& t : honest[0]) {
        tensor::Tensor e(t.shape());
        for (index_t i = 0; i < e.size(); ++i) {
          e[i] = (rng.uniform() < 0.5 ? -1e9 : 1e9);
        }
        evil.push_back(std::move(e));
      }
      attacked.push_back(std::move(evil));
    }
    const auto med = fl::coordinate_median(attacked);
    const auto trim = fl::trimmed_mean(attacked, 0.25);
    for (std::size_t t = 0; t < honest[0].size(); ++t) {
      for (index_t i = 0; i < honest[0][t].size(); ++i) {
        real lo = honest[0][t][i], hi = honest[0][t][i];
        for (const auto& h : honest) {
          lo = std::min(lo, h[t][i]);
          hi = std::max(hi, h[t][i]);
        }
        EXPECT_GE(med[t][i], lo - 1e-12) << "seed " << seed;
        EXPECT_LE(med[t][i], hi + 1e-12) << "seed " << seed;
        EXPECT_GE(trim[t][i], lo - 1e-12) << "seed " << seed;
        EXPECT_LE(trim[t][i], hi + 1e-12) << "seed " << seed;
      }
    }
  }
}

TEST(RobustAggregation, AgreesWithFedAvgOnHomogeneousCohorts) {
  // When every client uploads the SAME gradients, robustness costs
  // nothing: median, trimmed mean, and the unweighted mean all return
  // exactly that update.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto one = random_gradient_sets(seed ^ 0x40, 1)[0];
    std::vector<std::vector<tensor::Tensor>> sets(5, one);
    std::vector<fl::ClientUpdateMessage> updates(5);
    for (std::size_t i = 0; i < 5; ++i) {
      updates[i].client_id = i;
      updates[i].num_examples = 2;
      updates[i].gradients = tensor::serialize_tensors(one);
    }
    const auto avg = fl::fedavg_unweighted(updates);
    const auto med = fl::coordinate_median(sets);
    const auto trim = fl::trimmed_mean(sets, 0.2);
    for (std::size_t t = 0; t < one.size(); ++t) {
      EXPECT_TRUE(tensor::allclose(med[t], one[t], 1e-15, 1e-15));
      EXPECT_TRUE(tensor::allclose(trim[t], one[t], 1e-12, 1e-12));
      EXPECT_TRUE(tensor::allclose(avg[t], med[t], 1e-12, 1e-12));
    }
  }
}

TEST(RobustAggregation, ZeroTrimIsTheUnweightedMeanAndBoundsAreEnforced) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto sets = random_gradient_sets(seed ^ 0x99, 6);
    std::vector<fl::ClientUpdateMessage> updates(sets.size());
    for (std::size_t i = 0; i < sets.size(); ++i) {
      updates[i].client_id = i;
      updates[i].num_examples = 3;
      updates[i].gradients = tensor::serialize_tensors(sets[i]);
    }
    const auto mean = fl::fedavg_unweighted(updates);
    const auto trim0 = fl::trimmed_mean(sets, 0.0);
    for (std::size_t t = 0; t < mean.size(); ++t) {
      EXPECT_TRUE(tensor::allclose(trim0[t], mean[t], 1e-12, 1e-12));
    }
  }
  const auto sets = random_gradient_sets(1, 4);
  EXPECT_THROW(fl::trimmed_mean(sets, 0.5), ConfigError);
  EXPECT_THROW(fl::trimmed_mean(sets, -0.1), ConfigError);
  EXPECT_THROW(fl::coordinate_median({}), AggregationError);
}

}  // namespace
}  // namespace oasis
