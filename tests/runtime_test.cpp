// oasis::runtime tests: pool stress, parallel_for coverage and exception
// semantics, and the determinism contract — parallel FL training must be
// byte-identical to serial.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/server.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace oasis::runtime {
namespace {

// The container may expose a single hardware thread; force a real pool so
// the concurrency machinery is actually exercised.
constexpr index_t kTestThreads = 4;

struct ThreadCountGuard {
  ThreadCountGuard() { set_num_threads(kTestThreads); }
  ~ThreadCountGuard() { set_num_threads(0); }
};

TEST(ThreadPool, RunsEverySubmittedTaskIncludingNestedOnes) {
  constexpr int kOuter = 200;
  // Declared before the pool: workers may still touch these while the pool
  // destructor drains, so they must outlive it.
  std::atomic<int> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  const auto bump = [&] {
    if (done.fetch_add(1) + 1 == 2 * kOuter) {
      std::lock_guard lock(mutex);
      cv.notify_all();
    }
  };
  for (int i = 0; i < kOuter; ++i) {
    pool.submit([&] {
      // Workers submitting follow-up work is the pattern parallel_for's
      // helper tasks rely on; both parent and child must run.
      pool.submit(bump);
      bump();
    });
  }
  std::unique_lock lock(mutex);
  const bool ok = cv.wait_for(lock, std::chrono::seconds(30),
                              [&] { return done.load() == 2 * kOuter; });
  EXPECT_TRUE(ok) << "only " << done.load() << " of " << 2 * kOuter
                  << " tasks ran";
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queues empty
  EXPECT_EQ(ran.load(), 500);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (const index_t grain : {index_t{1}, index_t{3}, index_t{7},
                              index_t{64}, index_t{10000}}) {
    constexpr index_t kBegin = 13, kEnd = 1301;
    std::vector<std::atomic<int>> hits(kEnd);
    for (auto& h : hits) h.store(0);
    parallel_for(kBegin, kEnd, grain, [&](index_t lo, index_t hi) {
      ASSERT_LE(lo, hi);
      ASSERT_LE(hi - lo, grain);
      for (index_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (index_t i = 0; i < kEnd; ++i) {
      ASSERT_EQ(hits[i].load(), i >= kBegin ? 1 : 0)
          << "index " << i << " grain " << grain;
    }
  }
}

TEST(ParallelFor, EmptyRangeRunsNothing) {
  ThreadCountGuard guard;
  parallel_for(5, 5, 1, [](index_t, index_t) { FAIL(); });
  parallel_for(9, 3, 1, [](index_t, index_t) { FAIL(); });
}

TEST(ParallelFor, NestedParallelismDoesNotDeadlock) {
  ThreadCountGuard guard;
  constexpr index_t kOuter = 8, kInner = 512;
  std::vector<long> sums(kOuter, 0);
  parallel_for(0, kOuter, 1, [&](index_t o0, index_t o1) {
    for (index_t o = o0; o < o1; ++o) {
      // More inner chunks than pool slots: the caller must help execute
      // them instead of blocking on a saturated pool.
      std::atomic<long> sum{0};
      parallel_for(0, kInner, 8, [&](index_t lo, index_t hi) {
        long s = 0;
        for (index_t i = lo; i < hi; ++i) s += static_cast<long>(i);
        sum.fetch_add(s);
      });
      sums[o] = sum.load();
    }
  });
  const long expected = static_cast<long>(kInner) * (kInner - 1) / 2;
  for (const long s : sums) EXPECT_EQ(s, expected);
}

TEST(ParallelFor, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadCountGuard guard;
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [](index_t lo, index_t) {
                     if (lo == 42) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay serviceable after a failed region.
  std::atomic<int> count{0};
  parallel_for(0, 64, 1,
               [&](index_t lo, index_t hi) {
                 count.fetch_add(static_cast<int>(hi - lo));
               });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  // Floating-point sums depend on association order; the contract is that
  // the order is a pure function of (begin, end, grain), so serial and
  // parallel runs agree to the last bit.
  common::Rng rng(7);
  std::vector<real> values(4097);
  for (auto& v : values) v = rng.uniform() * 2.0 - 1.0;
  const auto sum_with = [&](index_t threads) {
    set_num_threads(threads);
    return parallel_reduce(
        index_t{0}, values.size(), index_t{97}, real{0.0},
        [&](index_t lo, index_t hi, real acc) {
          for (index_t i = lo; i < hi; ++i) acc += values[i];
          return acc;
        },
        [](real a, real b) { return a + b; });
  };
  const real serial = sum_with(1);
  const real parallel = sum_with(kTestThreads);
  set_num_threads(0);
  EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(real)), 0)
      << "serial=" << serial << " parallel=" << parallel;
}

// ---------------------------------------------------------------------------
// End-to-end determinism: a 2-round FL simulation — client training (conv /
// dense kernels, augmentation) fanned out over the pool — must leave the
// global model byte-identical to a serial run.

data::InMemoryDataset tiny_dataset(index_t n, index_t classes,
                                   std::uint64_t seed) {
  data::SynthConfig cfg;
  cfg.num_classes = classes;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = n;
  cfg.test_per_class = 0;
  cfg.seed = seed;
  return data::generate(cfg).train;
}

fl::ModelFactory tiny_factory(std::uint64_t seed) {
  return [seed] {
    common::Rng rng(seed);
    return nn::make_mlp({3, 8, 8}, {16}, 4, rng);
  };
}

std::vector<real> run_two_rounds(index_t threads) {
  set_num_threads(threads);
  auto dataset = tiny_dataset(8, 4, 21);
  const auto shards = dataset.shard(4);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (index_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<fl::Client>(
        i, shards[i], tiny_factory(77), 4,
        std::make_shared<fl::IdentityPreprocessor>(), common::Rng(300 + i)));
  }
  auto server = std::make_unique<fl::Server>(tiny_factory(77)(), 0.1);
  fl::Simulation sim(std::move(server), std::move(clients),
                     fl::SimulationConfig{/*clients_per_round=*/3, /*seed=*/9});
  sim.run_round();
  sim.run_round();
  std::vector<real> flat;
  for (auto* p : sim.server().global_model().parameters()) {
    const auto span = p->value.data();
    flat.insert(flat.end(), span.begin(), span.end());
  }
  return flat;
}

TEST(Determinism, TwoRoundSimulationIsByteIdenticalSerialVsParallel) {
  const auto serial = run_two_rounds(1);
  const auto parallel = run_two_rounds(kTestThreads);
  set_num_threads(0);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                        serial.size() * sizeof(real)),
            0);
}

}  // namespace
}  // namespace oasis::runtime
