// Secure aggregation and model-inconsistency tests.
#include <gtest/gtest.h>

#include <memory>

#include "attack/rtf.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/inconsistent_server.h"
#include "fl/secure_agg.h"
#include "nn/dense.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "tensor/ops.h"

namespace oasis::fl {
namespace {

std::vector<tensor::Shape> toy_shapes() {
  return {{4, 3}, {7}};
}

TEST(SecureAgg, MasksCancelAcrossTheCohort) {
  const std::vector<std::uint64_t> cohort{3, 11, 7, 42};
  SecureAggregationSession session(cohort, /*round_nonce=*/5);
  std::vector<tensor::Tensor> sum{tensor::Tensor({4, 3}),
                                  tensor::Tensor({7})};
  for (const auto id : cohort) {
    const auto mask = session.mask_for(id, toy_shapes());
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += mask[i];
  }
  for (const auto& s : sum) {
    EXPECT_LT(s.norm(), 1e-9);
  }
}

TEST(SecureAgg, MasksAreDeterministicPerRoundAndDifferAcrossRounds) {
  const std::vector<std::uint64_t> cohort{1, 2, 3};
  SecureAggregationSession a(cohort, 9);
  SecureAggregationSession b(cohort, 9);
  SecureAggregationSession c(cohort, 10);
  const auto ma = a.mask_for(2, toy_shapes());
  const auto mb = b.mask_for(2, toy_shapes());
  const auto mc = c.mask_for(2, toy_shapes());
  EXPECT_TRUE(ma[0] == mb[0]);
  EXPECT_TRUE(ma[1] == mb[1]);
  EXPECT_FALSE(ma[0] == mc[0]);
}

TEST(SecureAgg, IndividualMaskedUpdateIsUnrecognizable) {
  const std::vector<std::uint64_t> cohort{0, 1};
  SecureAggregationSession session(cohort, 1);
  ClientUpdateMessage update;
  update.client_id = 0;
  update.num_examples = 4;
  common::Rng rng(2);
  const tensor::Tensor original =
      tensor::Tensor::randn({32}, rng, 0.0, 1e-3);  // small "gradient"
  update.gradients = tensor::serialize_tensors({original});
  session.mask_update(update);
  const auto masked = tensor::deserialize_tensors(update.gradients);
  // The N(0,1) mask dwarfs the 1e-3-scale signal.
  EXPECT_GT(tensor::max_abs_diff(masked[0], original), 0.1);
}

TEST(SecureAgg, ValidatesCohort) {
  EXPECT_THROW(SecureAggregationSession({1}, 0), Error);
  EXPECT_THROW(SecureAggregationSession({1, 1}, 0), Error);
  SecureAggregationSession ok({1, 2}, 0);
  EXPECT_THROW(ok.mask_for(9, toy_shapes()), Error);
}

class InconsistencyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SynthConfig cfg;
    cfg.num_classes = 6;
    cfg.height = cfg.width = 10;
    cfg.train_per_class = 6;
    cfg.test_per_class = 0;
    pool_ = std::make_unique<data::InMemoryDataset>(
        data::generate(cfg).train);
    cfg.seed ^= 3;
    aux_ = std::make_unique<data::InMemoryDataset>(
        data::generate(cfg).train);
  }

  std::unique_ptr<data::InMemoryDataset> pool_;
  std::unique_ptr<data::InMemoryDataset> aux_;
};

TEST_F(InconsistencyFixture, TargetGetsLiveModelOthersGetDeadOne) {
  const nn::ImageSpec spec{3, 10, 10};
  const index_t n = 24;
  attack::RtfAttack atk(spec, n, *aux_);
  common::Rng rng(4);
  const ModelFactory factory = [&] {
    return nn::make_attack_host(spec, n, 6, rng);
  };
  InconsistentMaliciousServer server(factory(), 1e-3, atk.manipulator(),
                                     /*target=*/2);
  server.begin_round();

  auto live = factory();
  nn::deserialize_state(*live, server.dispatch_to(2).model_state);
  auto dead = factory();
  nn::deserialize_state(*dead, server.dispatch_to(0).model_state);

  auto* live_dense = dynamic_cast<nn::Dense*>(&live->at(1));
  auto* dead_dense = dynamic_cast<nn::Dense*>(&dead->at(1));
  ASSERT_NE(live_dense, nullptr);
  ASSERT_NE(dead_dense, nullptr);
  // Live: RTF bias ladder (finite, data-scale). Dead: all −1e9.
  EXPECT_GT(live_dense->bias().value.min(), -10.0);
  EXPECT_DOUBLE_EQ(dead_dense->bias().value.max(), -1e9);
  // Weights identical otherwise.
  EXPECT_TRUE(tensor::allclose(dead_dense->weight().value,
                               live_dense->weight().value));
}

TEST_F(InconsistencyFixture, NonTargetMaliciousGradientsAreExactlyZero) {
  const nn::ImageSpec spec{3, 10, 10};
  const index_t n = 24;
  attack::RtfAttack atk(spec, n, *aux_);
  common::Rng rng(5);
  const ModelFactory factory = [&] {
    return nn::make_attack_host(spec, n, 6, rng);
  };
  InconsistentMaliciousServer server(factory(), 1e-3, atk.manipulator(),
                                     /*target=*/0);
  server.begin_round();

  Client bystander(1, *pool_, factory, 4,
                   std::make_shared<IdentityPreprocessor>(), common::Rng(6));
  const auto update = bystander.handle_round(server.dispatch_to(1));
  const auto grads = tensor::deserialize_tensors(update.gradients);
  // Parameter order: Flatten (none), Dense1 W+b, ... → indices 0, 1.
  EXPECT_DOUBLE_EQ(grads[0].norm(), 0.0);
  EXPECT_DOUBLE_EQ(grads[1].norm(), 0.0);

  // And the aggregate over {victim, bystander} carries exactly the victim's
  // malicious-layer gradients.
  Client victim(0, *pool_, factory, 4,
                std::make_shared<IdentityPreprocessor>(), common::Rng(7));
  const auto victim_update = victim.handle_round(server.dispatch_to(0));
  const auto victim_grads =
      tensor::deserialize_tensors(victim_update.gradients);
  tensor::Tensor aggregate = victim_grads[0] + grads[0];
  EXPECT_TRUE(tensor::allclose(aggregate, victim_grads[0]));
}

TEST_F(InconsistencyFixture, RejectsNonNegativeDeadBias) {
  const nn::ImageSpec spec{3, 10, 10};
  attack::RtfAttack atk(spec, 24, *aux_);
  common::Rng rng(8);
  EXPECT_THROW(InconsistentMaliciousServer(
                   nn::make_attack_host(spec, 24, 6, rng), 1e-3,
                   atk.manipulator(), 0, /*dead_bias=*/1.0),
               Error);
}

}  // namespace
}  // namespace oasis::fl
