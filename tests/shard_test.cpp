// Differential + unit proofs for the sharded streaming round engine.
//
// The load-bearing suite is the differential one: fl::ShardedSimulation over
// a VirtualPopulation must be BYTE-IDENTICAL — final model bytes and the
// shared obs counters — to fl::Simulation over the materialized population,
// at shard sizes {1, 7, 64} and thread counts {1, 8}. That is the engine's
// whole contract: O(shard) memory buys nothing if the protocol output
// drifts. The remaining tests pin the hash-threshold sampler's determinism,
// the mid-round checkpoint round-trip, snapshot cross-config rejection, and
// quorum-abort semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/manager.h"
#include "common/error.h"
#include "common/rng.h"
#include "fl/population.h"
#include "fl/shard.h"
#include "fl/simulation.h"
#include "nn/model_io.h"
#include "nn/models.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace oasis::fl {
namespace {

constexpr std::uint64_t kPopulationSeed = 0xBEEF;
constexpr std::uint64_t kSelectionSeed = 41;
constexpr index_t kPopulation = 24;
constexpr index_t kCohort = 10;
constexpr index_t kRounds = 3;

VirtualPopulationConfig test_population(index_t num_clients = kPopulation) {
  VirtualPopulationConfig cfg;
  cfg.num_clients = num_clients;
  cfg.seed = kPopulationSeed;
  cfg.num_classes = 4;
  cfg.height = cfg.width = 8;
  cfg.examples_per_client = 6;
  cfg.batch_size = 3;
  cfg.factory = [] {
    common::Rng init(kPopulationSeed ^ 0x5EED);
    return nn::make_mlp({3, 8, 8}, {8}, 4, init);
  };
  return cfg;
}

std::unique_ptr<Server> test_server() {
  return std::make_unique<Server>(test_population().factory(),
                                  /*learning_rate=*/0.1);
}

/// The counters BOTH engines emit on the honest path. Everything else —
/// the sharded engine's fl.shard.* gauges, the materialized engine's clock
/// bookkeeping — is engine-shaped and excluded from the differential.
std::map<std::string, std::uint64_t> shared_counters() {
  static const std::vector<std::string> kExact = {
      "fl.rounds", "fl.clients_trained", "fl.bytes_dispatched",
      "fl.bytes_uploaded"};
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : obs::Registry::global().counters()) {
    const bool validate = name.rfind("fl.validate.", 0) == 0;
    const bool exact =
        std::find(kExact.begin(), kExact.end(), name) != kExact.end();
    if (validate || exact) out[name] = value;
  }
  return out;
}

struct RunResult {
  tensor::ByteBuffer model;
  std::map<std::string, std::uint64_t> counters;
};

RunResult run_sharded(index_t threads, index_t shard_size,
                      CohortSampler sampler = CohortSampler::kFisherYates,
                      index_t rounds = kRounds) {
  runtime::set_num_threads(threads);
  obs::Registry::global().reset();
  ShardedConfig cfg;
  cfg.cohort_size = kCohort;
  cfg.shard_size = shard_size;
  cfg.seed = kSelectionSeed;
  cfg.sampler = sampler;
  ShardedSimulation engine(test_server(), VirtualPopulation(test_population()),
                           cfg);
  engine.run(rounds);
  return {nn::serialize_state(engine.server().global_model()),
          shared_counters()};
}

RunResult run_materialized(index_t threads, index_t rounds = kRounds) {
  runtime::set_num_threads(threads);
  obs::Registry::global().reset();
  VirtualPopulation population(test_population());
  Simulation sim(test_server(), population.materialize(),
                 SimulationConfig{kCohort, kSelectionSeed});
  sim.run(rounds);
  return {nn::serialize_state(sim.server().global_model()),
          shared_counters()};
}

void expect_differential_identity(index_t threads) {
  const RunResult reference = run_materialized(threads);
  ASSERT_FALSE(reference.model.empty());
  ASSERT_EQ(reference.counters.at("fl.rounds"), kRounds);
  ASSERT_EQ(reference.counters.at("fl.clients_trained"), kRounds * kCohort);
  for (const index_t shard_size : {index_t{1}, index_t{7}, index_t{64}}) {
    const RunResult sharded = run_sharded(threads, shard_size);
    EXPECT_EQ(sharded.model, reference.model)
        << "model bytes diverged at shard_size=" << shard_size
        << " threads=" << threads;
    EXPECT_EQ(sharded.counters, reference.counters)
        << "shared obs counters diverged at shard_size=" << shard_size
        << " threads=" << threads;
  }
}

// --- The differential proof: sharded == materialized, byte for byte --------

TEST(ShardDifferential, MatchesMaterializedSimulation_Serial) {
  expect_differential_identity(1);
}

TEST(ShardDifferential, MatchesMaterializedSimulation_Threads8) {
  expect_differential_identity(8);
}

// The sharded engine must also agree with ITSELF across thread counts —
// the parallel region only trains; fold order is thread-independent.
TEST(ShardDifferential, ThreadCountInvariant) {
  const RunResult serial = run_sharded(1, 7);
  const RunResult threaded = run_sharded(8, 7);
  EXPECT_EQ(serial.model, threaded.model);
  EXPECT_EQ(serial.counters, threaded.counters);
}

// --- Hash-threshold sampler -------------------------------------------------

TEST(ShardSampler, HashThresholdRunsAreDeterministic) {
  const RunResult a = run_sharded(1, 16, CohortSampler::kHashThreshold);
  const RunResult b = run_sharded(1, 16, CohortSampler::kHashThreshold);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.counters, b.counters);
}

TEST(ShardSampler, HashThresholdCohortsAreFreshEachRound) {
  // Distinct round tickets must hash to distinct cohorts: over three rounds
  // with a ~40% participation target, identical consecutive cohorts mean the
  // ticket is not feeding the mix.
  runtime::set_num_threads(1);
  obs::Registry::global().reset();
  ShardedConfig cfg;
  cfg.cohort_size = 200;
  cfg.shard_size = 64;
  cfg.seed = kSelectionSeed;
  cfg.sampler = CohortSampler::kHashThreshold;
  VirtualPopulation population(test_population(512));
  const std::uint64_t threshold = cohort_threshold(200, 512);
  std::vector<std::vector<std::uint64_t>> cohorts;
  for (std::uint64_t ticket = 0; ticket < 3; ++ticket) {
    std::vector<std::uint64_t> members;
    for (std::uint64_t id = 0; id < 512; ++id) {
      if (cohort_member(kSelectionSeed, ticket, id, threshold)) {
        members.push_back(id);
      }
    }
    // Binomial around 200: grossly off means the threshold is wrong.
    EXPECT_GT(members.size(), 120u) << "ticket " << ticket;
    EXPECT_LT(members.size(), 280u) << "ticket " << ticket;
    cohorts.push_back(std::move(members));
  }
  EXPECT_NE(cohorts[0], cohorts[1]);
  EXPECT_NE(cohorts[1], cohorts[2]);

  // And the engine resolves exactly these cohorts, in ascending-id order.
  ShardedSimulation engine(test_server(), std::move(population), cfg);
  for (std::uint64_t ticket = 0; ticket < 3; ++ticket) {
    std::vector<std::uint64_t> folded;
    engine.set_client_hook(
        [&folded](std::uint64_t id, index_t) { folded.push_back(id); });
    const index_t resolved = engine.run_round();
    EXPECT_EQ(resolved, cohorts[ticket].size());
    EXPECT_EQ(folded, cohorts[ticket]);
  }
}

TEST(ShardSampler, FullCohortSentinelSelectsEveryone) {
  EXPECT_EQ(cohort_threshold(512, 512), ~0ULL);
  const std::uint64_t threshold = cohort_threshold(512, 512);
  for (std::uint64_t id : {0ULL, 17ULL, 511ULL}) {
    EXPECT_TRUE(cohort_member(kSelectionSeed, 0, id, threshold));
  }
  EXPECT_THROW((void)cohort_threshold(513, 512), ConfigError);
  EXPECT_THROW((void)cohort_threshold(1, 0), ConfigError);
}

// --- Config validation ------------------------------------------------------

TEST(ShardConfig, RejectsInvalidConfigs) {
  ShardedConfig zero_shard;
  zero_shard.shard_size = 0;
  EXPECT_THROW(ShardedSimulation(test_server(),
                                 VirtualPopulation(test_population()),
                                 zero_shard),
               ConfigError);
  ShardedConfig oversized_cohort;
  oversized_cohort.cohort_size = kPopulation + 1;
  EXPECT_THROW(ShardedSimulation(test_server(),
                                 VirtualPopulation(test_population()),
                                 oversized_cohort),
               ConfigError);
  ShardedConfig bad_quorum;
  bad_quorum.quorum_fraction = 1.5;
  EXPECT_THROW(ShardedSimulation(test_server(),
                                 VirtualPopulation(test_population()),
                                 bad_quorum),
               ConfigError);
}

// --- Mid-round checkpoint round-trip ----------------------------------------

ShardedConfig ckpt_config() {
  ShardedConfig cfg;
  cfg.cohort_size = kCohort;
  cfg.shard_size = 3;  // 10-client cohort → 4 shards: real mid-round states
  cfg.seed = kSelectionSeed;
  return cfg;
}

TEST(ShardCheckpoint, MidRoundSnapshotResumesBitExact) {
  runtime::set_num_threads(1);
  obs::Registry::global().reset();

  // Reference run captures a snapshot at round 1, after its second shard.
  ShardedSimulation reference(test_server(),
                              VirtualPopulation(test_population()),
                              ckpt_config());
  tensor::ByteBuffer snapshot;
  reference.set_shard_hook([&](const ShardProgress& p) {
    if (p.ticket == 1 && p.shard == 1) {
      EXPECT_TRUE(reference.mid_round());
      EXPECT_EQ(p.num_shards, 4u);
      snapshot = reference.encode_checkpoint();
    }
  });
  reference.run(kRounds);
  ASSERT_FALSE(snapshot.empty());
  const tensor::ByteBuffer want =
      nn::serialize_state(reference.server().global_model());

  // A fresh engine restored from the mid-round snapshot must land on the
  // same final bytes after finishing the in-flight round and the rest.
  ShardedSimulation resumed(test_server(),
                            VirtualPopulation(test_population()),
                            ckpt_config());
  resumed.restore_checkpoint(snapshot);
  EXPECT_TRUE(resumed.mid_round());
  EXPECT_EQ(resumed.server().round(), 1u);
  while (resumed.server().round() < kRounds) {
    resumed.run_round();
  }
  EXPECT_EQ(nn::serialize_state(resumed.server().global_model()), want);
}

TEST(ShardCheckpoint, RestingSnapshotResumesBitExact) {
  runtime::set_num_threads(1);
  obs::Registry::global().reset();
  ShardedSimulation reference(test_server(),
                              VirtualPopulation(test_population()),
                              ckpt_config());
  reference.run(1);
  const tensor::ByteBuffer snapshot = reference.encode_checkpoint();
  reference.run(kRounds - 1);
  const tensor::ByteBuffer want =
      nn::serialize_state(reference.server().global_model());

  ShardedSimulation resumed(test_server(),
                            VirtualPopulation(test_population()),
                            ckpt_config());
  resumed.restore_checkpoint(snapshot);
  EXPECT_FALSE(resumed.mid_round());
  resumed.run(kRounds - 1);
  EXPECT_EQ(nn::serialize_state(resumed.server().global_model()), want);
}

TEST(ShardCheckpoint, RejectsSnapshotFromDifferentFederation) {
  runtime::set_num_threads(1);
  obs::Registry::global().reset();
  ShardedSimulation source(test_server(),
                           VirtualPopulation(test_population()),
                           ckpt_config());
  source.run(1);
  const tensor::ByteBuffer snapshot = source.encode_checkpoint();

  // Different population size → kStateMismatch, live engine untouched.
  ShardedSimulation other(test_server(),
                          VirtualPopulation(test_population(kPopulation + 8)),
                          ckpt_config());
  try {
    other.restore_checkpoint(snapshot);
    FAIL() << "cross-federation snapshot was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), CheckpointError::Reason::kStateMismatch);
  }
  EXPECT_EQ(other.server().round(), 0u);
  EXPECT_FALSE(other.mid_round());
  EXPECT_EQ(other.run_round(), kCohort);  // still fully operational
}

TEST(ShardCheckpoint, RejectsMaterializedEngineSnapshot) {
  runtime::set_num_threads(1);
  obs::Registry::global().reset();
  VirtualPopulation population(test_population());
  Simulation sim(test_server(), population.materialize(),
                 SimulationConfig{kCohort, kSelectionSeed});
  sim.run_round();
  const tensor::ByteBuffer foreign = sim.encode_checkpoint();

  ShardedSimulation engine(test_server(),
                           VirtualPopulation(test_population()),
                           ckpt_config());
  EXPECT_THROW(engine.restore_checkpoint(foreign), CheckpointError);
  EXPECT_EQ(engine.server().round(), 0u);
}

TEST(ShardCheckpoint, GenerationsInterleaveRoundsAndShards) {
  runtime::set_num_threads(1);
  obs::Registry::global().reset();
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = std::string(::testing::TempDir()) + "/oasis_" +
                          info->test_suite_name() + "_" + info->name();
  ckpt::CheckpointManager manager(dir, /*keep=*/16);

  ShardedSimulation engine(test_server(),
                           VirtualPopulation(test_population()),
                           ckpt_config());
  std::vector<std::string> paths;
  engine.set_shard_hook([&](const ShardProgress& p) {
    if (p.shard + 1 < p.num_shards) {  // skip the final (resting) boundary
      paths.push_back(engine.save_checkpoint(manager));
    }
  });
  engine.run(2);
  engine.set_shard_hook({});
  paths.push_back(engine.save_checkpoint(manager));
  ASSERT_GE(paths.size(), 4u);

  const auto gens = manager.generations();
  ASSERT_EQ(gens.size(), paths.size());
  for (std::size_t i = 1; i < gens.size(); ++i) {
    EXPECT_LT(gens[i - 1], gens[i]) << "generation order must be monotone";
  }

  // resume_from lands on the newest (resting, post-round-2) snapshot.
  ShardedSimulation resumed(test_server(),
                            VirtualPopulation(test_population()),
                            ckpt_config());
  EXPECT_EQ(resumed.resume_from(manager), 2u);
  EXPECT_FALSE(resumed.mid_round());
  EXPECT_EQ(nn::serialize_state(resumed.server().global_model()),
            nn::serialize_state(engine.server().global_model()));
}

// --- Quorum -----------------------------------------------------------------

TEST(ShardQuorum, AbortLeavesModelUntouchedAndNextRoundProceeds) {
  runtime::set_num_threads(1);
  obs::Registry::global().reset();
  ShardedConfig cfg = ckpt_config();
  cfg.quorum_fraction = 1.0;
  ShardedSimulation engine(test_server(),
                           VirtualPopulation(test_population()), cfg);

  FaultConfig all_drop;
  all_drop.dropout_prob = 1.0;
  engine.set_fault_plan(FaultPlan(all_drop));
  const tensor::ByteBuffer before =
      nn::serialize_state(engine.server().global_model());
  EXPECT_THROW(engine.run_round(), QuorumError);
  EXPECT_EQ(nn::serialize_state(engine.server().global_model()), before);
  EXPECT_EQ(engine.server().round(), 0u);
  EXPECT_FALSE(engine.mid_round());

  // Faults cleared, the retried protocol round commits on a FRESH ticket.
  engine.set_fault_plan(FaultPlan());
  EXPECT_EQ(engine.run_round(), kCohort);
  EXPECT_EQ(engine.server().round(), 1u);
  EXPECT_NE(nn::serialize_state(engine.server().global_model()), before);
}

}  // namespace
}  // namespace oasis::fl
