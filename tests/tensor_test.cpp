// Unit tests for the tensor engine: construction, arithmetic, matmul
// variants, im2col/col2im adjointness, reductions, serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/crc32c.h"
#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace oasis::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (const auto v : t.data()) EXPECT_EQ(v, 0.0);
}

TEST(Tensor, FromValuesAndAt) {
  Tensor t({2, 2}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(t.at({0, 0}), 1.0);
  EXPECT_EQ(t.at({0, 1}), 2.0);
  EXPECT_EQ(t.at({1, 0}), 3.0);
  EXPECT_EQ(t.at2(1, 1), 4.0);
}

TEST(Tensor, ShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0, 2.0}), Error);
  Tensor a({2, 2});
  Tensor b({2, 3});
  EXPECT_THROW(a += b, ShapeError);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0, 0, 0}), Error);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a({3}, {1.0, 2.0, 3.0});
  Tensor b({3}, {4.0, 5.0, 6.0});
  Tensor c = a + b;
  EXPECT_EQ(c[0], 5.0);
  EXPECT_EQ(c[2], 9.0);
  c -= a;
  EXPECT_EQ(c[1], 5.0);
  c *= 2.0;
  EXPECT_EQ(c[2], 12.0);
  c.add_scaled_(a, -1.0);
  EXPECT_EQ(c[0], 7.0);
  Tensor d = a;
  d.mul_(b);
  EXPECT_EQ(d[1], 10.0);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {3.0, -1.0, 4.0, 2.0});
  EXPECT_DOUBLE_EQ(t.sum(), 8.0);
  EXPECT_DOUBLE_EQ(t.mean(), 2.0);
  EXPECT_DOUBLE_EQ(t.min(), -1.0);
  EXPECT_DOUBLE_EQ(t.max(), 4.0);
  EXPECT_EQ(t.argmax(), 2u);
  EXPECT_DOUBLE_EQ(t.norm(), std::sqrt(9.0 + 1.0 + 16.0 + 4.0));
}

TEST(Tensor, ReshapeAndSlice) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at2(1, 0), 3.0);
  EXPECT_THROW(t.reshaped({4, 2}), Error);
  Tensor row = t.row(1);
  EXPECT_EQ(row.shape(), (Shape{3}));
  EXPECT_EQ(row[0], 4.0);
  Tensor s = t.slice(0);
  EXPECT_EQ(s.shape(), (Shape{3}));
  EXPECT_EQ(s[2], 3.0);
}

TEST(Ops, MatmulKnownValues) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_DOUBLE_EQ(c.at2(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at2(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at2(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at2(1, 1), 154.0);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(Ops, TransposedVariantsAgreeWithExplicitTranspose) {
  common::Rng rng(7);
  Tensor a = Tensor::randn({5, 4}, rng);
  Tensor b = Tensor::randn({5, 6}, rng);
  // matmul_tn(a, b) == transpose(a) @ b
  EXPECT_TRUE(allclose(matmul_tn(a, b), matmul(transpose(a), b)));
  Tensor c = Tensor::randn({3, 4}, rng);
  Tensor d = Tensor::randn({6, 4}, rng);
  // matmul_nt(c, d) == c @ transpose(d)
  EXPECT_TRUE(allclose(matmul_nt(c, d), matmul(c, transpose(d))));
}

TEST(Ops, TransposeStridesRank2) {
  // Non-square so a row/column stride mix-up cannot cancel out.
  Tensor a({2, 3}, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  const Tensor t = transpose(a);
  ASSERT_EQ(t.dim(0), 3u);
  ASSERT_EQ(t.dim(1), 2u);
  for (index_t i = 0; i < 2; ++i) {
    for (index_t j = 0; j < 3; ++j) EXPECT_EQ(t.at2(j, i), a.at2(i, j));
  }
  // Row-major layout of the result: element (j, i) lives at j*2 + i.
  EXPECT_EQ(t[0], 1.0);
  EXPECT_EQ(t[1], 4.0);
  EXPECT_EQ(t[2], 2.0);
  EXPECT_EQ(t[3], 5.0);
  EXPECT_EQ(t[4], 3.0);
  EXPECT_EQ(t[5], 6.0);
  // Involution: transposing twice restores the original bits.
  const Tensor back = transpose(t);
  ASSERT_EQ(back.shape(), a.shape());
  for (index_t i = 0; i < a.size(); ++i) EXPECT_EQ(back[i], a[i]);
  EXPECT_THROW(transpose(Tensor({2, 2, 2})), ShapeError);
  EXPECT_THROW(transpose(Tensor({4})), ShapeError);
}

TEST(Ops, MatvecAndOuter) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor x({2}, {1, 1});
  Tensor y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  Tensor o = outer(x, y);
  EXPECT_EQ(o.shape(), (Shape{2, 2}));
  EXPECT_DOUBLE_EQ(o.at2(1, 1), 7.0);
}

TEST(Ops, SumRowsAndAddRowVector) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = sum_rows(a);
  EXPECT_DOUBLE_EQ(s[0], 5.0);
  EXPECT_DOUBLE_EQ(s[2], 9.0);
  Tensor bias({3}, {10, 20, 30});
  add_row_vector(a, bias);
  EXPECT_DOUBLE_EQ(a.at2(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(a.at2(1, 2), 36.0);
}

TEST(Ops, ReluAndBackward) {
  Tensor z({4}, {-1.0, 0.0, 0.5, 2.0});
  Tensor a = relu(z);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[3], 2.0);
  Tensor g({4}, {1, 1, 1, 1});
  Tensor gi = relu_backward(g, z);
  EXPECT_DOUBLE_EQ(gi[0], 0.0);
  EXPECT_DOUBLE_EQ(gi[1], 0.0);  // boundary: z == 0 gives zero grad
  EXPECT_DOUBLE_EQ(gi[2], 1.0);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  common::Rng rng(3);
  Tensor logits = Tensor::randn({4, 7}, rng, 0.0, 5.0);
  Tensor p = softmax_rows(logits);
  for (index_t i = 0; i < 4; ++i) {
    real s = 0.0;
    for (index_t j = 0; j < 7; ++j) {
      EXPECT_GE(p.at2(i, j), 0.0);
      s += p.at2(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  common::Rng rng(4);
  Tensor logits = Tensor::randn({3, 5}, rng, 0.0, 3.0);
  Tensor lp = log_softmax_rows(logits);
  Tensor p = softmax_rows(logits);
  for (index_t i = 0; i < lp.size(); ++i) {
    EXPECT_NEAR(std::exp(lp[i]), p[i], 1e-12);
  }
}

TEST(Ops, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1, no padding: im2col is a reshape.
  Tensor img({1, 2, 2}, {1, 2, 3, 4});
  Tensor cols = im2col(img, 1, 1, 1, 0);
  EXPECT_EQ(cols.shape(), (Shape{1, 4}));
  EXPECT_DOUBLE_EQ(cols.at2(0, 3), 4.0);
}

TEST(Ops, Im2ColKnownPatch) {
  // 2x2 image, 2x2 kernel: single output position contains the whole image.
  Tensor img({1, 2, 2}, {1, 2, 3, 4});
  Tensor cols = im2col(img, 2, 2, 1, 0);
  EXPECT_EQ(cols.shape(), (Shape{4, 1}));
  EXPECT_DOUBLE_EQ(cols.at2(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cols.at2(3, 0), 4.0);
}

TEST(Ops, Im2ColPaddingProducesZeros) {
  Tensor img({1, 1, 1}, {5.0});
  Tensor cols = im2col(img, 3, 3, 1, 1);
  EXPECT_EQ(cols.shape(), (Shape{9, 1}));
  // Center tap sees the pixel; corners see padding.
  EXPECT_DOUBLE_EQ(cols.at2(4, 0), 5.0);
  EXPECT_DOUBLE_EQ(cols.at2(0, 0), 0.0);
}

TEST(Ops, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // the conv backward pass relies on.
  common::Rng rng(11);
  const index_t c = 2, h = 6, w = 5, k = 3, stride = 2, pad = 1;
  Tensor x = Tensor::randn({c, h, w}, rng);
  const index_t oh = conv_out_extent(h, k, stride, pad);
  const index_t ow = conv_out_extent(w, k, stride, pad);
  Tensor y = Tensor::randn({c * k * k, oh * ow}, rng);
  const Tensor ix = im2col(x, k, k, stride, pad);
  real lhs = 0.0;
  for (index_t i = 0; i < ix.size(); ++i) lhs += ix[i] * y[i];
  const Tensor cy = col2im(y, c, h, w, k, k, stride, pad);
  real rhs = 0.0;
  for (index_t i = 0; i < x.size(); ++i) rhs += x[i] * cy[i];
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(Serialize, RoundTripSingle) {
  common::Rng rng(5);
  Tensor t = Tensor::randn({3, 4, 5}, rng);
  ByteBuffer buf;
  write_tensor(t, buf);
  std::size_t offset = 0;
  Tensor u = read_tensor(buf, offset);
  EXPECT_EQ(offset, buf.size());
  EXPECT_TRUE(t == u);
}

TEST(Serialize, RoundTripList) {
  common::Rng rng(6);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({2, 2}, rng));
  ts.push_back(Tensor::randn({7}, rng));
  ts.push_back(Tensor({1, 1}));
  ByteBuffer buf = serialize_tensors(ts);
  auto us = deserialize_tensors(buf);
  ASSERT_EQ(us.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(ts[i] == us[i]);
}

TEST(Serialize, TruncatedThrows) {
  common::Rng rng(8);
  ByteBuffer buf = serialize_tensors({Tensor::randn({4, 4}, rng)});
  buf.resize(buf.size() - 7);
  EXPECT_THROW(deserialize_tensors(buf), SerializationError);
}

TEST(Serialize, TrailingBytesThrow) {
  // Appending a byte breaks the CRC trailer (the stored CRC is no longer at
  // the end), so this surfaces as checksum damage…
  ByteBuffer buf = serialize_tensors({Tensor({2})});
  buf.push_back(0);
  EXPECT_THROW(deserialize_tensors(buf), ChecksumError);
  // …and with the trailer recomputed over the padded payload, the structural
  // trailing-bytes check must still fire.
  ByteBuffer padded = serialize_tensors({Tensor({2})});
  padded.insert(padded.end() - 4, 0);
  reseal_tensors(padded);
  EXPECT_THROW(deserialize_tensors(padded), SerializationError);
  EXPECT_THROW(scan_tensors(padded), SerializationError);
}

TEST(Serialize, BitFlipAnywhereFailsTheChecksum) {
  // A single bit flip that PRESERVES structure (flips inside a value) used
  // to pass scan_tensors; the CRC32C trailer closes that gap. CRC32 detects
  // every single-bit error, so sweep a representative set of positions.
  common::Rng rng(11);
  const ByteBuffer clean = serialize_tensors({Tensor::randn({3, 3}, rng)});
  for (std::size_t pos = 0; pos < clean.size(); pos += 3) {
    for (int bit = 0; bit < 8; bit += 5) {
      ByteBuffer flipped = clean;
      flipped[pos] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW(deserialize_tensors(flipped), ChecksumError)
          << "byte " << pos << " bit " << bit;
      EXPECT_THROW(scan_tensors(flipped), ChecksumError)
          << "byte " << pos << " bit " << bit;
    }
  }
  EXPECT_EQ(deserialize_tensors(clean).size(), 1u);  // clean still parses
}

TEST(Serialize, ResealRepairsAMutatedPayload) {
  common::Rng rng(12);
  ByteBuffer buf = serialize_tensors({Tensor::randn({2, 2}, rng)});
  buf[buf.size() - 12] ^= 0x01;  // mutate a value byte
  EXPECT_THROW(deserialize_tensors(buf), ChecksumError);
  reseal_tensors(buf);
  EXPECT_EQ(deserialize_tensors(buf).size(), 1u);
}

TEST(Serialize, TruncationSweepEveryByteOffsetThrows) {
  // Malformed-payload regression: a "small model" of three mixed-rank
  // tensors, truncated at EVERY byte offset, must throw SerializationError
  // from both the deserializer and the scanner — never read past the buffer
  // or attempt a hostile allocation.
  common::Rng rng(9);
  std::vector<Tensor> model;
  model.push_back(Tensor::randn({4, 3}, rng));    // weight
  model.push_back(Tensor::randn({4}, rng));       // bias
  model.push_back(Tensor::randn({2, 4}, rng));    // head
  const ByteBuffer full = serialize_tensors(model);
  for (std::size_t len = 0; len < full.size(); ++len) {
    const ByteBuffer cut(full.begin(), full.begin() + len);
    EXPECT_THROW(deserialize_tensors(cut), SerializationError) << len;
    EXPECT_THROW(scan_tensors(cut), SerializationError) << len;
  }
  // The untruncated buffer still parses, so the sweep tested real prefixes.
  EXPECT_EQ(deserialize_tensors(full).size(), 3u);
}

TEST(Serialize, OversizedExtentsThrowInsteadOfAllocating) {
  // A header claiming 2^62 × 2^62 elements must be rejected by the
  // overflow-safe bounds check, not wrap to a small count or reach the
  // allocator.
  auto put_u64 = [](ByteBuffer& b, std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    b.insert(b.end(), p, p + sizeof(v));
  };
  // Give each hand-built hostile buffer a VALID CRC trailer: the checksum
  // screen runs first, and these tests exist to exercise the structural
  // hardening behind it.
  auto seal = [](ByteBuffer& b) {
    const std::uint32_t crc = oasis::common::crc32c(b.data(), b.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(&crc);
    b.insert(b.end(), p, p + sizeof(crc));
  };
  ByteBuffer evil;
  put_u64(evil, 1);                      // one tensor
  put_u64(evil, 2);                      // rank 2
  put_u64(evil, std::uint64_t{1} << 62); // extents whose product wraps
  put_u64(evil, std::uint64_t{1} << 62);
  seal(evil);
  EXPECT_THROW(deserialize_tensors(evil), SerializationError);
  EXPECT_THROW(scan_tensors(evil), SerializationError);

  // A single huge-but-non-wrapping extent with no payload behind it.
  ByteBuffer sparse;
  put_u64(sparse, 1);
  put_u64(sparse, 1);
  put_u64(sparse, std::uint64_t{1} << 40);
  seal(sparse);
  EXPECT_THROW(deserialize_tensors(sparse), SerializationError);

  // Implausible rank and implausible tensor count.
  ByteBuffer ranky;
  put_u64(ranky, 1);
  put_u64(ranky, 9);  // rank cap is 8
  seal(ranky);
  EXPECT_THROW(deserialize_tensors(ranky), SerializationError);
  ByteBuffer county;
  put_u64(county, std::uint64_t{1} << 32);
  seal(county);
  EXPECT_THROW(deserialize_tensors(county), SerializationError);
}

TEST(Serialize, ScanMatchesDeserializedContents) {
  common::Rng rng(10);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({5, 3}, rng));
  ts.push_back(Tensor::randn({200}, rng));  // exercises the chunked walk
  const ByteBuffer buf = serialize_tensors(ts);
  const TensorScan scan = scan_tensors(buf);
  EXPECT_EQ(scan.tensors, 2u);
  EXPECT_EQ(scan.values, 215u);
  EXPECT_TRUE(scan.all_finite);
  ASSERT_EQ(scan.shapes.size(), 2u);
  EXPECT_EQ(scan.shapes[0], Shape({5, 3}));
  EXPECT_EQ(scan.shapes[1], Shape({200}));
  double sq = 0.0;
  for (const auto& t : ts) {
    for (const auto v : t.data()) sq += v * v;
  }
  EXPECT_NEAR(scan.sum_squares, sq, 1e-12 * sq);

  ts[1][7] = std::numeric_limits<real>::quiet_NaN();
  EXPECT_FALSE(scan_tensors(serialize_tensors(ts)).all_finite);
}

TEST(Rng, DeterministicAndSplit) {
  common::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  common::Rng c = a.split(1);
  common::Rng d = a.split(1);
  // Splits from different parent states differ.
  EXPECT_NE(c(), d());
}

TEST(Rng, StateRoundTripResumesTheStreamExactly) {
  common::Rng a(99);
  a.normal();  // leaves a Box–Muller spare cached → has_spare must travel
  common::Rng b(1);
  b.set_state(a.state());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.normal(), b.normal());
    EXPECT_EQ(a(), b());
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntRange) {
  common::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NormalMoments) {
  common::Rng rng(10);
  real sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const real v = rng.normal(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  const real mean = sum / n;
  const real var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, InverseNormalCdfRoundTrip) {
  for (const real p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const real x = common::inverse_normal_cdf(p);
    EXPECT_NEAR(common::normal_cdf(x), p, 1e-9) << "p=" << p;
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  common::Rng rng(12);
  auto s = rng.sample_without_replacement(20, 10);
  ASSERT_EQ(s.size(), 10u);
  std::sort(s.begin(), s.end());
  EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
  for (const auto v : s) EXPECT_LT(v, 20u);
}

}  // namespace
}  // namespace oasis::tensor
