#include "test_util.h"

#include <algorithm>
#include <cmath>

namespace oasis::testutil {

real check_gradients(nn::Module& module, const tensor::Tensor& x,
                     common::Rng& rng, bool training) {
  // Analytic pass.
  tensor::Tensor y = module.forward(x, training);
  GradientProbe probe{tensor::Tensor::randn(y.shape(), rng)};
  module.zero_grad();
  tensor::Tensor x_copy = x;  // mutable copy for perturbation probes
  const tensor::Tensor grad_x = module.backward(probe.direction);

  const auto loss_at = [&] {
    return probe.loss(module.forward(x_copy, training));
  };

  real max_err = 0.0;
  // Parameter gradients.
  for (auto* param : module.parameters()) {
    auto values = param->value.data();
    auto grads = param->grad.data();
    // Probe a bounded number of coordinates (deterministic stride) so large
    // layers stay cheap while every region of the tensor is touched.
    const index_t count = values.size();
    const index_t stride = std::max<index_t>(1, count / 37);
    for (index_t i = 0; i < count; i += stride) {
      const real numeric = numeric_derivative(loss_at, values[i]);
      max_err = std::max(max_err, std::abs(numeric - grads[i]));
    }
  }
  // Input gradient.
  {
    auto values = x_copy.data();
    const index_t count = values.size();
    const index_t stride = std::max<index_t>(1, count / 37);
    for (index_t i = 0; i < count; i += stride) {
      const real numeric = numeric_derivative(loss_at, values[i]);
      max_err = std::max(max_err, std::abs(numeric - grad_x.data()[i]));
    }
  }
  return max_err;
}

}  // namespace oasis::testutil
