// Shared helpers for the OASIS test suites.
#pragma once

#include <functional>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace oasis::testutil {

/// Scalar probe loss L = Σ_i r_i · y_i for a fixed random direction r.
/// Its analytic gradient w.r.t. y is simply r, which lets us finite-
/// difference any module: backward(r) must produce dL/dx and accumulate
/// dL/dθ for this L.
struct GradientProbe {
  tensor::Tensor direction;  // r, same shape as the module output

  [[nodiscard]] real loss(const tensor::Tensor& y) const {
    real s = 0.0;
    auto r = direction.data();
    auto v = y.data();
    for (index_t i = 0; i < v.size(); ++i) s += r[i] * v[i];
    return s;
  }
};

/// Central-difference derivative of `f` w.r.t. one scalar location.
inline real numeric_derivative(const std::function<real()>& f, real& x,
                               real h = 1e-6) {
  const real saved = x;
  x = saved + h;
  const real up = f();
  x = saved - h;
  const real down = f();
  x = saved;
  return (up - down) / (2.0 * h);
}

/// Checks every parameter gradient and the input gradient of `module`
/// against central differences. Returns the max absolute error observed.
/// `x` is the probe input; a fresh forward pass runs per perturbation.
real check_gradients(nn::Module& module, const tensor::Tensor& x,
                     common::Rng& rng, bool training = true);

}  // namespace oasis::testutil
